"""SmallBank workload semantics and baseline-system smoke tests."""

import pytest

from repro.baselines import (
    FabricDeployment,
    FabricParams,
    HotStuffDeployment,
    HotStuffParams,
    PompeDeployment,
    PompeParams,
)
from repro.kvstore import KVStore, ProcedureRegistry
from repro.workloads import (
    EmptyWorkload,
    SmallBankWorkload,
    initial_state,
    register_noop,
    register_smallbank,
)


@pytest.fixture
def bank():
    registry = ProcedureRegistry()
    register_smallbank(registry)
    state, acc = initial_state(100)
    kv = KVStore(dict(state), acc_hint=acc)
    return registry, kv


def invoke(registry, kv, name, args):
    result, _ = kv.execute(lambda tx: registry.invoke(name, tx, args))
    return result


class TestSmallBankProcedures:
    def test_balance(self, bank):
        registry, kv = bank
        result = invoke(registry, kv, "smallbank.balance", {"customer": 1})
        assert result == {"ok": True, "balance": 2000}

    def test_deposit(self, bank):
        registry, kv = bank
        invoke(registry, kv, "smallbank.deposit_checking", {"customer": 1, "amount": 50})
        assert kv.get("checking:1") == 1050

    def test_negative_deposit_aborts(self, bank):
        registry, kv = bank
        result = invoke(registry, kv, "smallbank.deposit_checking", {"customer": 1, "amount": -5})
        assert not result["ok"]
        assert kv.get("checking:1") == 1000

    def test_transact_savings_floor(self, bank):
        registry, kv = bank
        result = invoke(registry, kv, "smallbank.transact_savings", {"customer": 1, "amount": -5000})
        assert not result["ok"]

    def test_send_payment_conserves_money(self, bank):
        registry, kv = bank
        invoke(registry, kv, "smallbank.send_payment", {"src": 1, "dst": 2, "amount": 100})
        assert kv.get("checking:1") == 900
        assert kv.get("checking:2") == 1100

    def test_send_payment_insufficient_funds(self, bank):
        registry, kv = bank
        result = invoke(registry, kv, "smallbank.send_payment", {"src": 1, "dst": 2, "amount": 10**6})
        assert not result["ok"]

    def test_write_check_overdraft_penalty(self, bank):
        registry, kv = bank
        invoke(registry, kv, "smallbank.write_check", {"customer": 3, "amount": 5000})
        assert kv.get("checking:3") == 1000 - 5000 - 1  # $1 penalty

    def test_amalgamate(self, bank):
        registry, kv = bank
        invoke(registry, kv, "smallbank.amalgamate", {"src": 1, "dst": 2})
        assert kv.get("checking:1") == 0
        assert kv.get("savings:1") == 0
        assert kv.get("checking:2") == 1000 + 2000

    def test_unknown_customer_aborts(self, bank):
        registry, kv = bank
        result = invoke(registry, kv, "smallbank.balance", {"customer": 12345})
        assert not result["ok"]


class TestGenerators:
    def test_deterministic_given_seed(self):
        a = SmallBankWorkload(n_accounts=100, seed=5)
        b = SmallBankWorkload(n_accounts=100, seed=5)
        assert [a.next_transaction() for _ in range(20)] == [b.next_transaction() for _ in range(20)]

    def test_all_types_generated(self):
        wl = SmallBankWorkload(n_accounts=100, seed=1)
        kinds = {wl.next_transaction()[0] for _ in range(300)}
        assert len(kinds) >= 5

    def test_hotspot_concentrates(self):
        wl = SmallBankWorkload(n_accounts=10_000, seed=2, hotspot=0.9, hotspot_size=10)
        customers = []
        for _ in range(300):
            _, args = wl.next_transaction()
            customers.extend(v for k, v in args.items() if k in ("customer", "src", "dst"))
        hot = sum(1 for c in customers if c < 10)
        assert hot / len(customers) > 0.5

    def test_initial_state_cached_and_consistent(self):
        a, acc_a = initial_state(100)
        b, acc_b = initial_state(100)
        assert a is b and acc_a == acc_b

    def test_empty_workload(self):
        wl = EmptyWorkload()
        proc, args = wl.next_transaction()
        assert proc == "noop"
        registry = ProcedureRegistry()
        register_noop(registry)
        kv = KVStore()
        result, _ = kv.execute(lambda tx: registry.invoke(proc, tx, args))
        assert result["ok"]


class TestHotStuffBaseline:
    def test_commits_and_replies(self):
        dep = HotStuffDeployment(n_replicas=4, params=HotStuffParams(batch_size=50))
        client = dep.add_client(rate=20_000, stop_at=0.1)
        dep.run(until=0.3)
        assert client.completed > 0
        assert dep.metrics.counters.get("blocks_committed", 0) > 0

    def test_latency_is_multiple_round_trips(self):
        from repro.network import constant_latency

        dep = HotStuffDeployment(
            n_replicas=4, params=HotStuffParams(batch_size=10),
            latency=constant_latency(0.010),
        )
        client = dep.add_client(rate=500, stop_at=0.5)
        dep.run(until=2.0)
        # 3-chain commit ⇒ at least 3 round trips ≈ 60 ms one-way×6.
        assert client.metrics.latency.mean() > 0.050

    def test_scales_to_more_replicas(self):
        dep = HotStuffDeployment(n_replicas=16, params=HotStuffParams(batch_size=50))
        client = dep.add_client(rate=10_000, stop_at=0.1)
        dep.run(until=0.5)
        assert client.completed > 0


class TestFabricBaseline:
    def test_endorse_order_validate_pipeline(self):
        dep = FabricDeployment(n_peers=4, params=FabricParams(block_timeout=0.05, block_max_size=50))
        client = dep.add_client(rate=500, stop_at=0.3)
        dep.run(until=2.0)
        assert client.completed > 0
        assert dep.metrics.counters.get("blocks_validated", 0) > 0

    def test_block_timeout_dominates_latency(self):
        dep = FabricDeployment(n_peers=4, params=FabricParams(block_timeout=0.5, block_max_size=10_000))
        client = dep.add_client(rate=100, stop_at=0.3)
        dep.run(until=3.0)
        assert client.metrics.latency.mean() > 0.2

    def test_throughput_far_below_iaccf(self):
        dep = FabricDeployment(n_peers=4)
        client = dep.add_client(rate=5_000, stop_at=1.0)
        dep.metrics.throughput.start_window(0.0)
        dep.run(until=4.0)
        dep.metrics.throughput.end_window(4.0)
        assert dep.metrics.throughput.throughput() < 3_000  # paper: 1.2k vs 47.8k


class TestPompeBaseline:
    def test_two_phase_commit_flow(self):
        dep = PompeDeployment(n_replicas=4, params=PompeParams(batch_size=50))
        client = dep.add_client(rate=50_000, stop_at=0.1)
        dep.run(until=0.5)
        assert client.completed > 0

    def test_higher_throughput_than_hotstuff_empty(self):
        hs = HotStuffDeployment(n_replicas=4)
        hs_client = hs.add_client(rate=600_000, stop_at=0.3)
        hs.run(until=0.6)
        po = PompeDeployment(n_replicas=4)
        po_client = po.add_client(rate=600_000, stop_at=0.3)
        po.run(until=0.6)
        assert po_client.completed > hs_client.completed  # Tab. 3 ordering
