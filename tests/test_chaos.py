"""The chaos fuzzer itself: determinism, shrinking, and a bounded soak.

The soak matrix proper lives in CI (``python -m repro.chaos --soak``);
here a couple of pinned seeds run end-to-end so a broken oracle or
harness fails tier-1 with the exact replay command in the message.
"""

from __future__ import annotations

import os

import pytest

from repro.chaos import (
    ChaosParams,
    FaultEvent,
    Schedule,
    generate_schedule,
    run_schedule,
    shrink_schedule,
)

# Keep in-suite runs bounded: a short fault window and quiescence still
# exercise every event kind but finish in a few seconds per seed.
FAST = ChaosParams(fault_end=1.5, quiescence=4.0, load_rate=150.0, n_events=6)


class TestScheduleGeneration:
    def test_generation_is_pure(self):
        a = generate_schedule(42, FAST)
        b = generate_schedule(42, FAST)
        assert a == b

    def test_different_seeds_differ(self):
        assert generate_schedule(1, FAST) != generate_schedule(2, FAST)

    def test_schedules_are_survivable(self):
        """Structural invariants the generator promises: crashes are
        paired with recoveries, at most max_crashed down at once, a late
        join is always preceded by its referendum."""
        for seed in range(20):
            schedule = generate_schedule(seed, FAST)
            down: set[int] = set()
            reconfigured_at: float | None = None
            for event in schedule.events:
                if event.kind == "crash":
                    down.add(event.args[0])
                    assert len(down) <= FAST.max_crashed
                elif event.kind == "recover":
                    down.discard(event.args[0])
                elif event.kind == "reconfigure":
                    reconfigured_at = event.time
                elif event.kind == "late_join":
                    assert reconfigured_at is not None
                    assert event.time > reconfigured_at
            assert not down, "every crash must pair with a recovery"

    def test_replay_command_embeds_non_default_params(self):
        schedule = generate_schedule(7, FAST)
        result_cmd = (
            f"PYTHONPATH=src python -m repro.chaos --seed 7 {FAST.cli_args()}"
        )
        assert "--fault-end 1.5" in result_cmd
        assert "--seed 7" in result_cmd


class TestDeterminism:
    def test_same_schedule_replays_byte_identically(self):
        """The whole point of seeded chaos: (seed, params) is the entire
        input, so two runs produce byte-identical traces and digests."""
        schedule = generate_schedule(3, FAST)
        first = run_schedule(schedule)
        second = run_schedule(schedule)
        assert first.trace == second.trace
        assert first.trace_digest == second.trace_digest
        assert first.violations == second.violations
        assert first.summary == second.summary


class TestShrinking:
    def test_shrink_converges_to_minimal_repro(self):
        """With a predicate that only needs two specific events, the
        ddmin loop must strip everything else (ISSUE: converge to <= 3
        events).  A synthetic predicate keeps this millisecond-fast and
        makes the expected minimum exact."""
        events = tuple(
            FaultEvent(0.3 + 0.1 * i, "crash", (i,)) for i in range(12)
        )
        schedule = Schedule(seed=0, params=FAST, events=events)

        def failing(candidate: Schedule) -> bool:
            ids = {e.args[0] for e in candidate.events}
            return {4, 9} <= ids

        minimal, runs = shrink_schedule(schedule, failing=failing)
        assert len(minimal.events) == 2
        assert {e.args[0] for e in minimal.events} == {4, 9}
        assert runs < 200

    def test_shrink_requires_a_failing_schedule(self):
        schedule = Schedule(seed=0, params=FAST, events=())
        with pytest.raises(ValueError):
            shrink_schedule(schedule, failing=lambda s: False)

    def test_shrink_is_deterministic(self):
        events = tuple(
            FaultEvent(0.3 + 0.1 * i, "crash", (i,)) for i in range(8)
        )
        schedule = Schedule(seed=0, params=FAST, events=events)
        failing = lambda c: any(e.args[0] == 5 for e in c.events)  # noqa: E731
        a, _ = shrink_schedule(schedule, failing=failing)
        b, _ = shrink_schedule(schedule, failing=failing)
        assert a == b


class TestPinnedSeeds:
    """A slice of the CI soak matrix, in-suite: these seeds mined real
    bugs during development (client gov-chain fetch wedge, governance
    link lost to batch pruning, stale-configuration receipt acceptance)
    and must stay green."""

    @pytest.mark.parametrize("seed", [1, 2])
    def test_pinned_seed_runs_clean(self, seed):
        result = run_schedule(generate_schedule(seed, FAST))
        assert result.ok, (
            f"oracle violations: {result.violations}; "
            f"replay with: {result.replay_command}"
        )

    @pytest.mark.skipif(
        os.environ.get("CHAOS_SOAK") != "1",
        reason="full soak matrix runs in CI (CHAOS_SOAK=1)",
    )
    @pytest.mark.parametrize("seed", [3, 5, 8, 13, 21, 34])
    def test_soak_matrix(self, seed):
        result = run_schedule(generate_schedule(seed, FAST))
        assert result.ok, (
            f"oracle violations: {result.violations}; "
            f"replay with: {result.replay_command}"
        )
