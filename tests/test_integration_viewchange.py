"""View changes: failover, safety across views, and catch-up (Alg. 2)."""

import pytest

from repro.lpbft import ProtocolParams
from repro.receipts import verify_receipt
from repro.workloads import SmallBankWorkload

from helpers import build_deployment

VC_PARAMS = ProtocolParams(
    pipeline=2, max_batch=20, checkpoint_interval=20,
    batch_delay=0.0005, view_change_timeout=0.3,
)


@pytest.fixture(scope="module")
def failover_run():
    """A full scenario: commits in view 0, primary partitioned, view
    change, more commits, heal, old primary catches up."""
    dep = build_deployment(params=VC_PARAMS, seed=b"vc")
    client = dep.add_client(retry_timeout=0.5)
    dep.start()
    wl = SmallBankWorkload(n_accounts=200, seed=11)
    phase1 = [client.submit(*wl.next_transaction(), min_index=0) for _ in range(40)]
    dep.run(until=0.2)
    committed_v0 = dep.committed_seqnos()[0]
    dep.net.partition({"replica-0"}, {"replica-1", "replica-2", "replica-3", client.address})
    phase2 = [client.submit(*wl.next_transaction(), min_index=0) for _ in range(30)]
    dep.run(until=4.0)
    dep.net.heal_partitions()
    phase3 = [client.submit(*wl.next_transaction(), min_index=0) for _ in range(20)]
    dep.run(until=12.0)
    return dep, client, phase1 + phase2 + phase3, committed_v0


def test_progress_resumes_after_primary_failure(failover_run):
    dep, _, _, committed_v0 = failover_run
    assert dep.replicas[1].committed_upto > committed_v0


def test_view_advanced(failover_run):
    dep, _, _, _ = failover_run
    assert all(r.view >= 1 for r in dep.replicas[1:])


def test_all_receipts_eventually_complete(failover_run):
    dep, client, digests, _ = failover_run
    assert len(client.receipts) == len(digests)


def test_ledgers_agree_after_failover(failover_run):
    dep, _, _, _ = failover_run
    assert dep.ledgers_agree()


def test_old_primary_caught_up(failover_run):
    dep, _, _, _ = failover_run
    frontier = max(r.committed_upto for r in dep.replicas)
    assert dep.replicas[0].committed_upto == frontier


def test_receipts_from_both_views_verify(failover_run):
    dep, client, digests, _ = failover_run
    views = {client.receipts[d].view for d in digests}
    assert len(views) >= 2, "expected receipts from at least two views"
    for d in digests:
        assert verify_receipt(client.receipts[d], dep.genesis_config)


def test_view_change_entries_in_ledger(failover_run):
    dep, _, _, _ = failover_run
    from repro.ledger import NewViewEntry, ViewChangesEntry

    ledger = dep.replicas[1].ledger
    kinds = [type(e) for e in ledger]
    assert ViewChangesEntry in kinds and NewViewEntry in kinds


def test_view_change_set_has_quorum_signatures(failover_run):
    dep, _, _, _ = failover_run
    from repro.ledger import ViewChangesEntry

    ledger = dep.replicas[1].ledger
    entry = next(e for e in ledger if isinstance(e, ViewChangesEntry))
    vcs = entry.view_changes()
    assert len(vcs) >= dep.genesis_config.quorum
    config = dep.genesis_config
    for vc in vcs:
        key = config.replica_key(vc.replica)
        assert dep.backend.verify(key, vc.signed_payload(), vc.signature)


def test_no_committed_transaction_lost(failover_run):
    """Safety: every receipt the client holds matches the final ledger."""
    dep, client, digests, _ = failover_run
    ledger = dep.replicas[1].ledger
    for d in digests:
        receipt = client.receipts[d]
        entry = ledger.entry_at_index(receipt.index)
        assert entry.output == receipt.output


def test_fragment_well_formed_after_view_change(failover_run):
    dep, _, _, _ = failover_run
    from repro.ledger.wellformed import check_well_formed

    replica = dep.replicas[1]
    issues = check_well_formed(
        replica.ledger.fragment(0), replica.schedule, dep.params.pipeline
    )
    assert issues == []


class TestTransientPartitionHeal:
    """WAN scenario: a scheduled partition isolates the primary, heals on
    its own (no manual heal call), and the service regains full liveness."""

    @pytest.fixture(scope="class")
    def partition_heal_run(self):
        dep = build_deployment(params=VC_PARAMS, seed=b"heal")
        client = dep.add_client(retry_timeout=0.5)
        dep.start()
        wl = SmallBankWorkload(n_accounts=200, seed=23)
        digests = [client.submit(*wl.next_transaction(), min_index=0) for _ in range(30)]
        dep.run(until=0.3)
        committed_before = dep.committed_seqnos()[0]
        # Isolate the primary from t=0.5 for 3 seconds; healing is a
        # scheduled simulation event, not a test action.
        dep.partition_replicas([0], start=0.5, duration=3.0)
        # Submit the second wave *inside* the partition window, so the
        # isolated primary forces a view change.
        def phase2():
            digests.extend(client.submit(*wl.next_transaction(), min_index=0) for _ in range(25))
        dep.net.scheduler.at(1.0, phase2)
        dep.run(until=5.0)  # partition healed at t=3.5 during this window
        digests.extend(client.submit(*wl.next_transaction(), min_index=0) for _ in range(20))
        dep.run(until=14.0)
        return dep, client, digests, committed_before

    def test_progress_during_partition(self, partition_heal_run):
        dep, _, _, committed_before = partition_heal_run
        assert dep.replicas[1].committed_upto > committed_before

    def test_liveness_after_heal(self, partition_heal_run):
        """Every submitted transaction gets a receipt — including those
        submitted after the automatic heal."""
        dep, client, digests, _ = partition_heal_run
        assert len(client.receipts) == len(digests)

    def test_isolated_primary_catches_up_after_heal(self, partition_heal_run):
        dep, _, _, _ = partition_heal_run
        frontier = max(r.committed_upto for r in dep.replicas)
        assert dep.replicas[0].committed_upto == frontier

    def test_ledgers_agree_after_heal(self, partition_heal_run):
        dep, _, _, _ = partition_heal_run
        assert dep.ledgers_agree()

    def test_partition_actually_dropped_traffic(self, partition_heal_run):
        dep, _, _, _ = partition_heal_run
        assert dep.net.messages_dropped > 0

    def test_receipts_verify_across_views(self, partition_heal_run):
        dep, client, digests, _ = partition_heal_run
        for d in digests:
            assert verify_receipt(client.receipts[d], dep.genesis_config)


class TestBackupRegionOutage:
    """Losing a non-primary replica for a while must not stall commits at
    all (quorum of 3/4 survives), and the stray replica catches up."""

    def test_backup_outage_keeps_committing(self):
        dep = build_deployment(params=VC_PARAMS, seed=b"backup-out")
        client = dep.add_client(retry_timeout=0.5)
        dep.start()
        wl = SmallBankWorkload(n_accounts=200, seed=29)
        digests = [client.submit(*wl.next_transaction(), min_index=0) for _ in range(20)]
        dep.run(until=0.3)
        dep.partition_replicas([3], start=0.4, duration=1.0)
        def during_outage():
            digests.extend(client.submit(*wl.next_transaction(), min_index=0) for _ in range(20))
        dep.net.scheduler.at(0.6, during_outage)
        dep.run(until=2.0)
        # Post-heal load: the next pre-prepares pull the stray replica
        # back to the frontier.
        digests.extend(client.submit(*wl.next_transaction(), min_index=0) for _ in range(20))
        dep.run(until=8.0)
        assert len(client.receipts) == len(digests)
        # No view change needed: the primary never lost its quorum.
        assert dep.replicas[0].view == 0
        frontier = max(r.committed_upto for r in dep.replicas)
        assert dep.replicas[3].committed_upto == frontier
        assert dep.ledgers_agree()
