"""View changes: failover, safety across views, and catch-up (Alg. 2)."""

import pytest

from repro.lpbft import ProtocolParams
from repro.receipts import verify_receipt
from repro.workloads import SmallBankWorkload

from conftest import build_deployment

VC_PARAMS = ProtocolParams(
    pipeline=2, max_batch=20, checkpoint_interval=20,
    batch_delay=0.0005, view_change_timeout=0.3,
)


@pytest.fixture(scope="module")
def failover_run():
    """A full scenario: commits in view 0, primary partitioned, view
    change, more commits, heal, old primary catches up."""
    dep = build_deployment(params=VC_PARAMS, seed=b"vc")
    client = dep.add_client(retry_timeout=0.5)
    dep.start()
    wl = SmallBankWorkload(n_accounts=200, seed=11)
    phase1 = [client.submit(*wl.next_transaction(), min_index=0) for _ in range(40)]
    dep.run(until=0.2)
    committed_v0 = dep.committed_seqnos()[0]
    dep.net.partition({"replica-0"}, {"replica-1", "replica-2", "replica-3", client.address})
    phase2 = [client.submit(*wl.next_transaction(), min_index=0) for _ in range(30)]
    dep.run(until=4.0)
    dep.net.heal_partitions()
    phase3 = [client.submit(*wl.next_transaction(), min_index=0) for _ in range(20)]
    dep.run(until=12.0)
    return dep, client, phase1 + phase2 + phase3, committed_v0


def test_progress_resumes_after_primary_failure(failover_run):
    dep, _, _, committed_v0 = failover_run
    assert dep.replicas[1].committed_upto > committed_v0


def test_view_advanced(failover_run):
    dep, _, _, _ = failover_run
    assert all(r.view >= 1 for r in dep.replicas[1:])


def test_all_receipts_eventually_complete(failover_run):
    dep, client, digests, _ = failover_run
    assert len(client.receipts) == len(digests)


def test_ledgers_agree_after_failover(failover_run):
    dep, _, _, _ = failover_run
    assert dep.ledgers_agree()


def test_old_primary_caught_up(failover_run):
    dep, _, _, _ = failover_run
    frontier = max(r.committed_upto for r in dep.replicas)
    assert dep.replicas[0].committed_upto == frontier


def test_receipts_from_both_views_verify(failover_run):
    dep, client, digests, _ = failover_run
    views = {client.receipts[d].view for d in digests}
    assert len(views) >= 2, "expected receipts from at least two views"
    for d in digests:
        assert verify_receipt(client.receipts[d], dep.genesis_config)


def test_view_change_entries_in_ledger(failover_run):
    dep, _, _, _ = failover_run
    from repro.ledger import NewViewEntry, ViewChangesEntry

    ledger = dep.replicas[1].ledger
    kinds = [type(e) for e in ledger]
    assert ViewChangesEntry in kinds and NewViewEntry in kinds


def test_view_change_set_has_quorum_signatures(failover_run):
    dep, _, _, _ = failover_run
    from repro.ledger import ViewChangesEntry

    ledger = dep.replicas[1].ledger
    entry = next(e for e in ledger if isinstance(e, ViewChangesEntry))
    vcs = entry.view_changes()
    assert len(vcs) >= dep.genesis_config.quorum
    config = dep.genesis_config
    for vc in vcs:
        key = config.replica_key(vc.replica)
        assert dep.backend.verify(key, vc.signed_payload(), vc.signature)


def test_no_committed_transaction_lost(failover_run):
    """Safety: every receipt the client holds matches the final ledger."""
    dep, client, digests, _ = failover_run
    ledger = dep.replicas[1].ledger
    for d in digests:
        receipt = client.receipts[d]
        entry = ledger.entry_at_index(receipt.index)
        assert entry.output == receipt.output


def test_fragment_well_formed_after_view_change(failover_run):
    dep, _, _, _ = failover_run
    from repro.ledger.wellformed import check_well_formed

    replica = dep.replicas[1]
    issues = check_well_formed(
        replica.ledger.fragment(0), replica.schedule, dep.params.pipeline
    )
    assert issues == []
