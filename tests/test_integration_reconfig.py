"""Reconfiguration (§5.1–5.2): replica swap, governance chains, clients."""

import pytest

from repro.lpbft import ProtocolParams
from repro.lpbft.messages import BATCH_CHECKPOINT, BATCH_END_OF_CONFIG, BATCH_START_OF_CONFIG
from repro.receipts import verify_chain, verify_receipt
from repro.workloads import SmallBankWorkload

from helpers import build_deployment

RECONF_PARAMS = ProtocolParams(
    pipeline=2, max_batch=20, checkpoint_interval=30,
    batch_delay=0.0005, view_change_timeout=5.0,
)


@pytest.fixture(scope="module")
def reconfig_run():
    """Swap replica 0 out and replica 4 in via a referendum."""
    dep = build_deployment(params=RECONF_PARAMS, spare_replicas=1, seed=b"reconf")
    client = dep.add_client(retry_timeout=0.5)
    members = {m: dep.member_client(m) for m in ("member-1", "member-2", "member-3")}
    dep.start()
    wl = SmallBankWorkload(n_accounts=200, seed=21)
    before = [client.submit(*wl.next_transaction(), min_index=0) for _ in range(30)]
    dep.run(until=0.3)

    new_config = dep.propose_successor(add=[4], remove=[0])
    members["member-1"].submit(
        "gov.propose", {"member": "member-1", "config": new_config.to_wire()}, min_index=0
    )
    dep.run(until=0.5)
    for name in ("member-1", "member-2", "member-3"):
        members[name].submit("gov.vote", {"member": name, "accept": True}, min_index=0)
        dep.run(until=dep.net.scheduler.now + 0.2)
    dep.run(until=3.0)
    after = [client.submit(*wl.next_transaction(), min_index=0) for _ in range(30)]
    dep.run(until=8.0)
    return dep, client, before, after, new_config


def test_new_configuration_active_everywhere(reconfig_run):
    dep, *_ = reconfig_run
    assert all(r.schedule.current().number == 1 for r in dep.replicas)


def test_progress_in_new_configuration(reconfig_run):
    dep, client, before, after, _ = reconfig_run
    assert len(client.receipts) == len(before) + len(after)


def test_eoc_and_soc_batches_present(reconfig_run):
    dep, *_ = reconfig_run
    flags = [r.flags for r in dep.replicas[1].batches.values()]
    ledger = dep.replicas[1].ledger
    all_flags = {ledger.batch_pre_prepare(s).flags for s in [b.seqno for b in ledger.batches()]}
    assert BATCH_END_OF_CONFIG in all_flags
    assert BATCH_CHECKPOINT in all_flags
    assert BATCH_START_OF_CONFIG in all_flags


def test_eoc_count_is_2p(reconfig_run):
    dep, *_ = reconfig_run
    ledger = dep.replicas[1].ledger
    eoc = [
        b.seqno
        for b in ledger.batches()
        if ledger.batch_pre_prepare(b.seqno).flags == BATCH_END_OF_CONFIG
    ]
    assert len(eoc) == 2 * dep.params.pipeline


def test_eoc_batches_carry_committed_root(reconfig_run):
    dep, *_ = reconfig_run
    ledger = dep.replicas[1].ledger
    roots = {
        ledger.batch_pre_prepare(b.seqno).committed_root
        for b in ledger.batches()
        if ledger.batch_pre_prepare(b.seqno).flags == BATCH_END_OF_CONFIG
    }
    assert len(roots) == 1 and b"" not in roots


def test_replica_gov_chains_verify(reconfig_run):
    dep, *_ = reconfig_run
    for replica in dep.replicas:
        assert len(replica.gov_chain) == 1
        schedule = verify_chain(replica.gov_chain, dep.params.pipeline)
        assert schedule.current().number == 1


def test_client_fetched_gov_chain(reconfig_run):
    dep, client, *_ = reconfig_run
    assert len(client.gov_chain) == 1


def test_new_config_receipt_verifies_under_new_keys(reconfig_run):
    dep, client, before, after, new_config = reconfig_run
    schedule = verify_chain(client.gov_chain, dep.params.pipeline)
    newest = max((client.receipts[d] for d in after), key=lambda r: r.seqno)
    config = schedule.config_at_seqno(newest.seqno)
    assert config.number == 1
    assert verify_receipt(newest, config)


def test_old_config_receipt_still_verifies_under_old_keys(reconfig_run):
    dep, client, before, *_ = reconfig_run
    schedule = verify_chain(client.gov_chain, dep.params.pipeline)
    oldest = min((client.receipts[d] for d in before), key=lambda r: r.seqno)
    config = schedule.config_at_seqno(oldest.seqno)
    assert config.number == 0
    assert verify_receipt(oldest, config)


def test_subledger_extraction_matches_schedule(reconfig_run):
    dep, *_ = reconfig_run
    from repro.governance.subledger import extract_governance_subledger

    replica = dep.replicas[1]
    subledger = extract_governance_subledger(replica.ledger.entries(), dep.params.pipeline)
    assert subledger.current_config().number == 1
    spans = subledger.schedule.spans()
    assert [s.config.number for s in spans] == [0, 1]
    assert spans[1].start_seqno == replica.schedule.spans()[1].start_seqno


def test_subledger_member_signatures(reconfig_run):
    dep, *_ = reconfig_run
    from repro.governance.subledger import extract_governance_subledger

    replica = dep.replicas[1]
    subledger = extract_governance_subledger(replica.ledger.entries(), dep.params.pipeline)
    assert subledger.verify_member_signatures()


def test_new_replica_state_matches(reconfig_run):
    dep, *_ = reconfig_run
    digests = {r.kv.state_digest() for r in dep.replicas[1:]}
    assert len(digests) == 1


def test_fragment_well_formed_across_reconfig(reconfig_run):
    dep, *_ = reconfig_run
    from repro.ledger.wellformed import check_well_formed

    replica = dep.replicas[1]
    issues = check_well_formed(replica.ledger.fragment(0), replica.schedule, dep.params.pipeline)
    assert issues == []
