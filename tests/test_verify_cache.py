"""Signature verify-cache and batched verify (hot-path overhaul).

The cache memoizes verification over (key, payload, sig) triples; it must
be invisible to the protocol — in particular, forged signatures stay
rejected, hit or miss.
"""

import pytest

from repro.crypto import signatures
from repro.crypto.signatures import HashSigBackend, SignatureVerifyCache, verify_batch
from repro.byzantine.forgery import forge_receipt
from repro.errors import CryptoError
from repro.lpbft.deployment import make_genesis_config
from repro.receipts import verify_receipt

from helpers import FAST_PARAMS, build_deployment, run_workload


@pytest.fixture
def backend():
    return HashSigBackend()


class TestVerifyCache:
    def test_miss_then_hits(self, backend):
        cache = SignatureVerifyCache()
        kp = backend.generate(b"k")
        sig = backend.sign(kp, b"msg")
        assert cache.verify(kp.public_key, b"msg", sig, backend)
        assert (cache.stats.misses, cache.stats.hits) == (1, 0)
        for _ in range(3):
            assert cache.verify(kp.public_key, b"msg", sig, backend)
        assert (cache.stats.misses, cache.stats.hits) == (1, 3)
        assert cache.stats.hit_rate() == pytest.approx(0.75)

    def test_distinct_triples_are_distinct_entries(self, backend):
        cache = SignatureVerifyCache()
        kp = backend.generate(b"k")
        for i in range(5):
            msg = b"msg-%d" % i
            assert cache.verify(kp.public_key, msg, backend.sign(kp, msg), backend)
        assert cache.stats.misses == 5 and len(cache) == 5

    def test_negative_result_cached_and_still_rejected(self, backend):
        cache = SignatureVerifyCache()
        kp, other = backend.generate(b"k"), backend.generate(b"other")
        sig = backend.sign(kp, b"msg")
        # Verified against the wrong key: rejected on the miss AND on hits.
        assert not cache.verify(other.public_key, b"msg", sig, backend)
        assert not cache.verify(other.public_key, b"msg", sig, backend)
        assert (cache.stats.misses, cache.stats.hits) == (1, 1)

    def test_long_payloads_keyed_by_digest(self, backend):
        cache = SignatureVerifyCache()
        kp = backend.generate(b"k")
        msg = b"x" * 10_000
        sig = backend.sign(kp, msg)
        assert cache.verify(kp.public_key, msg, sig, backend)
        assert cache.verify(kp.public_key, msg, sig, backend)
        assert cache.stats.hits == 1

    def test_eviction_beyond_max_entries(self, backend):
        cache = SignatureVerifyCache(max_entries=2)
        kp = backend.generate(b"k")
        for i in range(4):
            msg = b"m%d" % i
            cache.verify(kp.public_key, msg, backend.sign(kp, msg), backend)
        assert len(cache) <= 2
        assert cache.stats.evictions == 2

    def test_bad_max_entries_rejected(self):
        with pytest.raises(CryptoError):
            SignatureVerifyCache(max_entries=0)

    def test_clear_resets(self, backend):
        cache = SignatureVerifyCache()
        kp = backend.generate(b"k")
        cache.verify(kp.public_key, b"m", backend.sign(kp, b"m"), backend)
        cache.clear()
        assert len(cache) == 0 and cache.stats.lookups == 0


class TestBatchVerify:
    def test_batch_matches_individual(self, backend):
        kps = [backend.generate(bytes([i])) for i in range(4)]
        items = [(kp.public_key, b"payload", backend.sign(kp, b"payload")) for kp in kps]
        items.append((kps[0].public_key, b"payload", b"\x00" * 64))  # forged
        assert verify_batch(items, backend) == [True, True, True, True, False]

    def test_batch_dedups_identical_triples(self, backend):
        cache = SignatureVerifyCache()
        kp = backend.generate(b"k")
        sig = backend.sign(kp, b"msg")
        triple = (kp.public_key, b"msg", sig)
        results = verify_batch([triple] * 6, backend, cache)
        assert results == [True] * 6
        assert cache.stats.misses == 1 and cache.stats.hits == 5

    def test_batch_without_cache_still_dedups(self, backend):
        calls = []
        real_verify = backend.verify

        def counting_verify(pk, msg, sig):
            calls.append(1)
            return real_verify(pk, msg, sig)

        backend.verify = counting_verify
        kp = backend.generate(b"k")
        sig = backend.sign(kp, b"msg")
        assert verify_batch([(kp.public_key, b"msg", sig)] * 5, backend) == [True] * 5
        assert len(calls) == 1

    def test_empty_batch(self, backend):
        assert verify_batch([], backend) == []


class TestForgedSignaturesThroughCache:
    """The forgery helpers sign with their own keys; the cache must not
    launder them into validity."""

    def test_imposter_receipt_rejected_cached_and_uncached(self, backend):
        config, replica_keys, _ = make_genesis_config(4, backend, seed=b"vc-test")
        # Imposters hold fresh keys, not the configuration's replica keys.
        imposters = {i: backend.generate(b"imposter" + bytes([i])) for i in range(4)}
        tio = (("request", "svc", b"\x01" * 33, "proc", (), 0, b"\x02" * 64), 5, {"ok": True})
        forged = forge_receipt(imposters, config, view=0, seqno=3, tios=[tio], backend=backend)
        cache = SignatureVerifyCache()
        assert not verify_receipt(forged, config, backend)
        assert not verify_receipt(forged, config, backend, cache=cache)
        assert not verify_receipt(forged, config, backend, cache=cache)  # hit path
        assert cache.stats.hits >= 1

    def test_colluder_receipt_verdict_unchanged_by_cache(self, backend):
        """A quorum signing with its *real* keys forges a receipt that
        verifies (that is the accountability threat model); the cache must
        agree with the uncached verdict."""
        config, replica_keys, _ = make_genesis_config(4, backend, seed=b"vc-test2")
        tio = (("request", "svc", b"\x01" * 33, "proc", (), 0, b"\x02" * 64), 5, {"ok": True})
        forged = forge_receipt(replica_keys, config, view=0, seqno=3, tios=[tio], backend=backend)
        cache = SignatureVerifyCache()
        uncached = verify_receipt(forged, config, backend)
        assert verify_receipt(forged, config, backend, cache=cache) == uncached
        assert verify_receipt(forged, config, backend, cache=cache) == uncached


class TestDeploymentCacheWiring:
    def test_deployment_shares_cache_and_hits(self):
        dep = build_deployment()
        client = dep.add_client(retry_timeout=0.5)
        dep.start()
        run_workload(dep, client, n_tx=30, until=3.0)
        assert dep.committed_seqnos()[0] >= 1
        stats = dep.verify_cache.stats
        # Every client-request signature is verified by up to 4 replicas;
        # all but the first verification must be cache hits.
        assert stats.hits > 0 and stats.misses > 0
        assert stats.hit_rate() > 0.5

    def test_cache_disabled_still_commits(self):
        dep = build_deployment(params=FAST_PARAMS.variant(verify_cache=False))
        assert dep.verify_cache is None
        client = dep.add_client(retry_timeout=0.5)
        dep.start()
        run_workload(dep, client, n_tx=30, until=3.0)
        assert dep.committed_seqnos()[0] >= 1

    def test_cache_does_not_change_outcomes(self):
        """Same workload with and without the cache: identical ledgers."""
        roots = []
        for flag in (True, False):
            dep = build_deployment(params=FAST_PARAMS.variant(verify_cache=flag, batch_verify=flag))
            client = dep.add_client(retry_timeout=0.5)
            dep.start()
            run_workload(dep, client, n_tx=40, until=4.0)
            roots.append(dep.replicas[0].ledger.root())
        assert roots[0] == roots[1]


class TestAuditAndCollectorCacheWiring:
    def test_auditor_uses_cache_for_bulk_receipts(self):
        from repro.audit import Auditor
        from repro.enforcement.enforcer import make_enforcer

        dep = build_deployment()
        client = dep.add_client(retry_timeout=0.5)
        dep.start()
        digests = run_workload(dep, client, n_tx=40, until=4.0)
        auditor = Auditor(dep.registry, dep.params, backend=dep.backend)
        receipts = [client.receipts[d] for d in digests]
        result = auditor.audit(receipts, [dep.replicas[0].gov_chain], make_enforcer(dep))
        assert result.upoms == []
        # Many receipts share batch signatures: the memoized verifier must
        # have answered a good fraction from cache.
        assert auditor.verify_cache.stats.hits > 0

    def test_client_collector_uses_cache(self):
        dep = build_deployment()
        client = dep.add_client(retry_timeout=0.5)
        dep.start()
        run_workload(dep, client, n_tx=30, until=3.0)
        assert len(client.receipts) == 30
        assert client.collector._cache.stats.hits > 0


class TestBackendInstanceIsolation:
    def test_cache_does_not_leak_across_backend_instances(self):
        """HashSigBackend keeps a per-instance key registry; a shared cache
        must not serve one instance's verdict for another's."""
        b1, b2 = HashSigBackend(), HashSigBackend()
        cache = SignatureVerifyCache()
        kp = b2.generate(b"k")
        sig = b2.sign(kp, b"msg")
        assert not cache.verify(kp.public_key, b"msg", sig, b1)  # unknown key to b1
        assert cache.verify(kp.public_key, b"msg", sig, b2)      # must not hit b1's False

    def test_auditor_cache_respects_params_toggle(self):
        from repro.audit import Auditor
        from repro.lpbft import ProtocolParams
        from repro.kvstore import ProcedureRegistry

        params = ProtocolParams(verify_cache=False)
        auditor = Auditor(ProcedureRegistry(), params)
        assert auditor.verify_cache is None
        assert Auditor(ProcedureRegistry(), ProtocolParams()).verify_cache is not None

    def test_collector_cache_toggle(self):
        dep = build_deployment(params=FAST_PARAMS.variant(verify_cache=False))
        client = dep.add_client(retry_timeout=0.5)
        dep.start()
        run_workload(dep, client, n_tx=20, until=2.0)
        assert client.collector._cache is None
        assert len(client.receipts) == 20
