"""Multi-lane VirtualCPU invariants, open-loop load generation, and
per-lane utilization reporting."""

import pytest

from repro.errors import SimulationError
from repro.network import Node, SimNetwork, constant_latency
from repro.sim import VirtualCPU
from repro.sim.metrics import LatencyStats, MetricsCollector
from repro.workloads import (
    FixedRateArrivals,
    PoissonArrivals,
    SmallBankWorkload,
    make_arrivals,
)

from helpers import FAST_PARAMS, build_deployment


def overlapping(intervals):
    """Pairs of (start, end) intervals that overlap."""
    ordered = sorted(intervals)
    return [
        (a, b)
        for a, b in zip(ordered, ordered[1:])
        if b[0] < a[1] - 1e-12
    ]


class TestVirtualCPU:
    def test_parallel_kind_fans_out_across_lanes(self):
        cpu = VirtualCPU(cores=4)
        done = cpu.submit_many("verify", [1.0] * 4, not_before=0.0)
        assert done == pytest.approx(1.0)  # 4 items, 4 lanes: one round

    def test_parallel_batch_wraps_when_items_exceed_cores(self):
        cpu = VirtualCPU(cores=4)
        done = cpu.submit_many("verify", [1.0] * 10, not_before=0.0)
        assert done == pytest.approx(3.0)  # ceil(10/4) rounds

    def test_serial_kind_chains_on_its_pinned_lane(self):
        cpu = VirtualCPU(cores=8)
        first = cpu.submit("execute", 1.0, not_before=0.0)
        second = cpu.submit("execute", 1.0, not_before=0.0)
        assert (first, second) == (pytest.approx(1.0), pytest.approx(2.0))

    def test_serial_items_never_overlap(self):
        cpu = VirtualCPU(cores=8)
        cpu.trace = []
        for i in range(20):
            cpu.submit("execute", 0.5, not_before=0.1 * i)
        intervals = [(s, e) for kind, _, s, e in cpu.trace if kind == "execute"]
        assert overlapping(intervals) == []

    def test_never_more_lanes_than_cores(self):
        cpu = VirtualCPU(cores=3)
        cpu.trace = []
        cpu.submit_many("verify", [1.0] * 50, not_before=0.0)
        cpu.submit_many("hash", [0.5] * 20, not_before=0.0)
        assert {lane for _, lane, _, _ in cpu.trace} <= set(range(3))

    def test_within_lane_intervals_never_overlap(self):
        cpu = VirtualCPU(cores=4)
        cpu.trace = []
        for i in range(30):
            cpu.submit_many("verify", [0.3, 0.7], not_before=0.05 * i)
            cpu.submit("execute", 0.2, not_before=0.05 * i)
        for lane in range(4):
            intervals = [(s, e) for _, l, s, e in cpu.trace if l == lane]
            assert overlapping(intervals) == []

    def test_serial_lanes_pinned_modulo_cores(self):
        cpu = VirtualCPU(cores=2)  # execute policy lane 1, append lane 2 -> 0
        cpu.trace = []
        cpu.submit("execute", 1.0, not_before=0.0)
        cpu.submit("append", 1.0, not_before=0.0)
        lanes = {kind: lane for kind, lane, _, _ in cpu.trace}
        assert lanes == {"execute": 1, "append": 0}

    def test_unknown_kind_defaults_to_serial_lane_zero(self):
        cpu = VirtualCPU(cores=4)
        cpu.trace = []
        cpu.submit("mystery", 1.0, not_before=0.0)
        cpu.submit("mystery", 1.0, not_before=0.0)
        assert [lane for _, lane, _, _ in cpu.trace] == [0, 0]
        assert cpu.lane_free(0) == pytest.approx(2.0)

    def test_policy_override_pins_parallel_kind(self):
        # The Fabric 2.2 baseline pins verify: items must serialize.
        cpu = VirtualCPU(cores=8, policies={"verify": 1})
        done = cpu.submit_many("verify", [1.0] * 4, not_before=0.0)
        assert done == pytest.approx(4.0)

    def test_single_core_serializes_everything(self):
        cpu = VirtualCPU(cores=1)
        cpu.submit("verify", 1.0, not_before=0.0)
        cpu.submit("execute", 1.0, not_before=0.0)
        assert cpu.completion_time() == pytest.approx(2.0)

    def test_busy_between_is_exact(self):
        cpu = VirtualCPU(cores=2)
        cpu.trace = []
        cpu.submit("execute", 2.0, not_before=0.0)  # lane 1: [0, 2]
        busy = cpu.busy_between(1.0, 3.0)
        assert busy[1] == pytest.approx(1.0)  # half the item is inside
        assert busy[0] == 0.0
        assert cpu.utilization_between(1.0, 3.0)[1] == pytest.approx(0.5)

    def test_busy_between_requires_trace(self):
        cpu = VirtualCPU(cores=2)
        with pytest.raises(SimulationError):
            cpu.busy_between(0.0, 1.0)

    def test_negative_work_rejected(self):
        cpu = VirtualCPU(cores=2)
        with pytest.raises(SimulationError):
            cpu.submit("verify", -1.0, not_before=0.0)
        with pytest.raises(SimulationError):
            VirtualCPU(cores=0)

    def test_busy_accounting_by_kind(self):
        cpu = VirtualCPU(cores=4)
        cpu.submit_many("verify", [1.0] * 3, not_before=0.0)
        cpu.submit("execute", 0.5, not_before=0.0)
        by_kind = cpu.busy_by_kind()
        assert by_kind["verify"] == pytest.approx(3.0)
        assert by_kind["execute"] == pytest.approx(0.5)
        assert sum(cpu.busy_seconds()) == pytest.approx(3.5)


class TestNodeActivities:
    class Worker(Node):
        def __init__(self, cores):
            super().__init__("w", cores=cores)
            self.frontiers = []

        def on_message(self, src, msg):
            kind, items = msg
            if len(items) == 1:
                self.submit(kind, items[0])
            else:
                self.submit_many(kind, items)
            self.frontiers.append(self.cpu_time())

    def _net(self, cores):
        net = SimNetwork(latency=constant_latency(0.0))
        worker = self.Worker(cores)
        driver = _Driver()
        net.register(worker)
        net.register(driver)
        return net, worker, driver

    def test_frontier_joins_on_parallel_batch(self):
        net, worker, driver = self._net(cores=4)
        driver.send("w", ("verify", [1.0] * 8))
        net.run()
        assert worker.frontiers == [pytest.approx(2.0)]

    def test_activities_overlap_on_different_lanes(self):
        net, worker, driver = self._net(cores=4)
        driver.send("w", ("execute", [1.0]))
        driver.send("w", ("verify", [1.0]))
        net.run()
        # Both messages arrive at ~0; the verify does not queue behind
        # the execute — the serial timeline is gone.
        assert worker.frontiers == [pytest.approx(1.0), pytest.approx(1.0)]

    def test_timer_callbacks_run_as_activities(self):
        net, worker, driver = self._net(cores=4)
        fired = []
        worker.set_timer(1.0, lambda: fired.append(worker.submit("execute", 0.5)))
        net.run()
        assert fired == [pytest.approx(1.5)]


class _Driver(Node):
    def __init__(self):
        super().__init__("driver")

    def on_message(self, src, msg):
        pass


class TestArrivalProcesses:
    def test_fixed_rate_spacing(self):
        arr = FixedRateArrivals(100.0)
        assert arr.due(0.0) == 0  # primes: first arrival at +10 ms
        assert arr.due(0.0105) == 1
        assert arr.due(0.1) == 9  # arrivals at 20, 30, ..., 100 ms

    def test_poisson_deterministic_given_seed(self):
        a = PoissonArrivals(1000.0, seed=42)
        b = PoissonArrivals(1000.0, seed=42)
        assert [a.interarrival() for _ in range(50)] == [b.interarrival() for _ in range(50)]

    def test_poisson_seeds_differ(self):
        a = PoissonArrivals(1000.0, seed=1)
        b = PoissonArrivals(1000.0, seed=2)
        assert [a.interarrival() for _ in range(10)] != [b.interarrival() for _ in range(10)]

    def test_poisson_mean_rate(self):
        arr = PoissonArrivals(1000.0, seed=7)
        arr.due(0.0)  # prime the process at t=0
        n = arr.due(1.0)  # arrivals in one second
        assert 850 < n < 1150

    def test_delay_until_next_floors_at_min_tick(self):
        arr = FixedRateArrivals(1e6)
        arr.due(0.0)
        assert arr.delay_until_next(0.0) == pytest.approx(1e-3)
        slow = FixedRateArrivals(10.0)
        slow.due(0.0)
        assert slow.delay_until_next(0.0) == pytest.approx(0.1)

    def test_make_arrivals(self):
        assert isinstance(make_arrivals("fixed", 10.0), FixedRateArrivals)
        assert isinstance(make_arrivals("poisson", 10.0, seed=3), PoissonArrivals)
        with pytest.raises(ValueError):
            make_arrivals("uniform", 10.0)
        with pytest.raises(ValueError):
            make_arrivals("fixed", 0.0)


class TestLatencyStatsCache:
    def test_record_invalidates_sorted_view(self):
        stats = LatencyStats()
        for v in (3.0, 1.0, 2.0):
            stats.record(v)
        assert stats.p50() == 2.0
        stats.record(0.1)  # must invalidate the cached sort
        assert stats.p50() == 1.0
        assert stats.percentile(100) == 3.0

    def test_p90(self):
        stats = LatencyStats()
        for v in range(1, 11):
            stats.record(float(v))
        assert stats.p90() == 9.0

    def test_summary_includes_p90(self):
        m = MetricsCollector()
        m.latency.record(1.0)
        assert "latency_p90_ms" in m.summary()


class TestDeploymentIntegration:
    def _run_poisson(self, seed):
        dep = build_deployment(params=FAST_PARAMS, accounts=200)
        load = dep.add_load_generator(
            SmallBankWorkload(n_accounts=200, seed=5),
            rate=2_000,
            stop_at=0.25,
            arrivals=PoissonArrivals(2_000, seed=seed),
            verify_receipts=False,
            retry_timeout=5.0,
        )
        dep.start()
        dep.run(until=1.0)
        lat = load.metrics.latency
        return (
            load.submitted,
            dep.replicas[0].committed_upto,
            [round(s, 12) for s in lat._samples],
        )

    def test_seeded_open_loop_run_is_deterministic(self):
        assert self._run_poisson(9) == self._run_poisson(9)

    def test_different_seeds_change_the_schedule(self):
        assert self._run_poisson(1)[2] != self._run_poisson(2)[2]

    def test_replica_stage_lanes(self):
        """Execution never overlaps itself; bursts of client-signature
        verification really do fan out across lanes."""
        dep = build_deployment(params=FAST_PARAMS, accounts=200)
        replica = dep.replicas[1]  # a backup: verifies and re-executes
        replica.cpu.trace = []
        client = dep.add_client(retry_timeout=5.0)
        dep.start()
        wl = SmallBankWorkload(n_accounts=200, seed=3)
        for _ in range(30):
            client.submit(*wl.next_transaction(), min_index=0)
        dep.run(until=2.0)
        trace = replica.cpu.trace
        assert {lane for _, lane, _, _ in trace} <= set(range(replica.cpu.cores))
        execs = [(s, e) for kind, _, s, e in trace if kind == "execute"]
        assert execs and overlapping(execs) == []
        verify_lanes = {lane for kind, lane, _, _ in trace if kind == "verify"}
        assert len(verify_lanes) > 1  # the burst really used multiple lanes

    def test_queue_delay_recorded_at_primary(self):
        dep = build_deployment(params=FAST_PARAMS, accounts=200)
        client = dep.add_client(retry_timeout=5.0)
        dep.start()
        wl = SmallBankWorkload(n_accounts=200, seed=3)
        for _ in range(10):
            client.submit(*wl.next_transaction(), min_index=0)
        dep.run(until=2.0)
        assert dep.metrics.queue_delay.count >= 10
        assert "queue_delay_mean_ms" in dep.metrics.summary()


class TestPerLaneUtilizationReporting:
    def test_bench_point_reports_one_fraction_per_lane(self):
        from repro.bench import run_iaccf_point
        from repro.sim.costs import DEDICATED_CLUSTER

        point = run_iaccf_point(
            rate=1_000, duration=0.2, warmup=0.05, accounts=1_000,
            lane_metrics=True,
        )
        lanes = point.extra["lane_utilization"]
        assert len(lanes) == DEDICATED_CLUSTER.cores
        assert all(0.0 <= u <= 1.0 for u in lanes)
        assert sum(lanes) > 0.0
        assert point.extra["offered_tps"] > 0
        assert point.extra["goodput_tps"] > 0

    def test_collector_summary_carries_lane_utilization(self):
        m = MetricsCollector()
        m.record_lane_utilization([0.5, 0.25])
        assert m.summary()["lane_utilization"] == [0.5, 0.25]
