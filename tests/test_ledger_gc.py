"""Ledger prefix GC (PR 5): tree compaction, truncation + retention,
checkpoint-rooted audits, GC'd-batch receipt fallback, and state sync
against servers that no longer hold the genesis prefix."""

import hashlib

import pytest

from repro.audit import Auditor, build_ledger_package, check_package_completeness
from repro.byzantine import TamperExecution
from repro.enforcement import make_enforcer
from repro.errors import LedgerError, MerkleError
from repro.governance.subledger import GovernanceExtractor, extract_governance_subledger
from repro.ledger import Ledger, RetentionPolicy
from repro.lpbft import ProtocolParams
from repro.merkle.proofs import frontier_root, verify_path
from repro.merkle.tree import MerkleTree
from repro.workloads import SmallBankWorkload

from helpers import build_deployment, run_waves

# Aggressive GC: truncate as soon as a checkpoint stabilizes.
GC_PARAMS = ProtocolParams(
    pipeline=2, max_batch=10, checkpoint_interval=10,
    batch_delay=0.0005, view_change_timeout=2.0,
    ledger_gc_min_age=0.0,
)


def _leaves(n):
    return [hashlib.sha256(i.to_bytes(4, "big")).digest() for i in range(n)]


def force_gc(dep):
    """Run every replica's truncation hook once (the deployments in these
    tests use ledger_gc_min_age=0, so the boundary is the oldest stable
    checkpoint)."""
    for replica in dep.replicas:
        replica._maybe_truncate_ledger()


class TestMerkleCompaction:
    def test_roots_paths_and_frontiers_survive_compaction(self):
        leaves = _leaves(53)
        reference = MerkleTree(leaves)
        roots = {s: reference.root_at(s) for s in range(54)}
        for base in (1, 2, 7, 16, 31, 52, 53):
            tree = MerkleTree(leaves)
            assert tree.compact_below(base) == base
            assert len(tree) == 53 and tree.base == base
            for size in range(base, 54):
                assert tree.root_at(size) == roots[size]
                assert frontier_root(tree.frontier_at(size)) == roots[size]
            for index in range(base, 53):
                assert verify_path(leaves[index], tree.path(index), roots[53])

    def test_compacted_regions_raise(self):
        tree = MerkleTree(_leaves(20))
        tree.compact_below(12)
        with pytest.raises(MerkleError):
            tree.path(5, 20)
        with pytest.raises(MerkleError):
            tree.frontier_at(7)
        with pytest.raises(MerkleError):
            tree.truncate(8)
        # A root cached before compaction stays answerable.
        tree2 = MerkleTree(_leaves(20))
        cached = tree2.root_at(7)
        tree2.compact_below(12)
        with pytest.raises(MerkleError):
            tree2.root_at(7)  # cache for sizes below the base is dropped
        assert cached == MerkleTree(_leaves(7)).root()

    def test_appends_and_truncate_after_compaction(self):
        leaves = _leaves(40)
        reference = MerkleTree(leaves)
        tree = MerkleTree(leaves[:25])
        tree.compact_below(21)
        for leaf in leaves[25:]:
            tree.append(leaf)
        assert tree.root() == reference.root()
        tree.truncate(33)
        assert tree.root() == reference.root_at(33)

    def test_from_frontier_reproduces_roots(self):
        leaves = _leaves(29)
        reference = MerkleTree(leaves)
        tree = MerkleTree.from_frontier(reference.frontier_at(13))
        assert len(tree) == 13 and tree.base == 13
        for leaf in leaves[13:]:
            tree.append(leaf)
        assert tree.root() == reference.root()
        assert tree.root_at(13) == reference.root_at(13)


class TestRetentionPolicy:
    def test_pins_clamp_the_boundary(self):
        policy = RetentionPolicy()
        assert policy.boundary(500) == 500
        policy.pin("sync", 200)
        policy.pin("audit", 350)
        assert policy.floor() == 200
        assert policy.boundary(500) == 200
        policy.release("sync")
        assert policy.boundary(500) == 350
        policy.release("audit")
        assert policy.boundary(500) == 500


@pytest.fixture(scope="module")
def gc_run():
    """A long honest run with aggressive GC: every replica has truncated
    its ledger prefix at least once by the end."""
    dep = build_deployment(params=GC_PARAMS, seed=b"gc")
    client = dep.add_client(retry_timeout=0.5)
    dep.start()
    digests = run_waves(dep, client, waves=12, per_wave=25, gap=0.25)
    return dep, client, digests


class TestLedgerTruncation:
    def test_prefix_collected_and_indices_stay_absolute(self, gc_run):
        dep, client, digests = gc_run
        for replica in dep.replicas:
            ledger = replica.ledger
            assert ledger.base_index > 0, "no truncation happened"
            assert ledger.resident_entries() == len(ledger) - ledger.base_index
            counters = replica.metrics.summary()["counters"]
            assert counters.get("ledger_truncations", 0) >= 1
            assert counters.get("ledger_entries_gced", 0) == ledger.base_index
            # Reads below the base raise; retained reads keep their
            # absolute indices (the first retained entry's batch locator
            # agrees with the index space).
            with pytest.raises(LedgerError):
                ledger.entry(0)
            oldest = ledger.oldest_retained_seqno()
            info = ledger.batch(oldest)
            assert info.pp_index >= ledger.base_index
            assert ledger.batch_pre_prepare(oldest).seqno == oldest
        assert dep.ledgers_agree()

    def test_boundary_is_the_oldest_stable_checkpoint(self, gc_run):
        dep, _, _ = gc_run
        for replica in dep.replicas:
            stable = replica._oldest_stable_checkpoint()
            assert stable is not None
            boundary = replica.retention.boundary(stable.ledger_size)
            assert replica.ledger.base_index <= boundary
            # Everything the oldest stable checkpoint covers is collected
            # eventually; the retained suffix still verifies against it.
            assert replica.ledger.root_at(stable.ledger_size) == stable.ledger_root

    def test_retention_pin_blocks_and_release_unblocks(self):
        dep = build_deployment(params=GC_PARAMS, seed=b"gc-pin")
        client = dep.add_client(retry_timeout=0.5)
        dep.start()
        run_waves(dep, client, waves=4, per_wave=25, gap=0.25)
        primary = dep.primary()
        held = primary.ledger.base_index
        primary.retention.pin("pending-audit", held)  # model an open audit
        run_waves(dep, client, waves=6, per_wave=25, gap=0.25)
        assert primary.ledger.base_index == held, "pin did not hold the prefix"
        primary.retention.release("pending-audit")
        primary._maybe_truncate_ledger()
        assert primary.ledger.base_index > held

    def test_governance_subledger_survives_truncation(self, gc_run):
        dep, _, _ = gc_run
        replica = dep.primary()
        subledger = replica.governance_subledger()
        # The genesis entry (index 0) is long collected, yet the archive
        # still reports it — and the schedule still starts at config 0.
        assert subledger.entries[0][0] == 0
        assert subledger.schedule.spans()[0].config.number == 0

    def test_extractor_chunked_feed_matches_one_shot(self):
        dep = build_deployment(params=GC_PARAMS.variant(ledger_gc=False), seed=b"gc-x")
        client = dep.add_client(retry_timeout=0.5)
        dep.start()
        run_waves(dep, client, waves=4, per_wave=25, gap=0.25)
        entries = dep.primary().ledger.entries()
        one_shot = extract_governance_subledger(entries, GC_PARAMS.pipeline)
        chunked = GovernanceExtractor(GC_PARAMS.pipeline)
        cut = len(entries) // 3
        chunked.feed(entries[:cut], 0)
        snapshot = chunked.copy()  # archive semantics: copy stays usable
        chunked.feed(entries[cut:], cut)
        assert chunked.subledger().entries == one_shot.entries
        assert snapshot.feed(entries[cut:], cut).subledger().entries == one_shot.entries


class TestCheckpointRootedAudit:
    """The acceptance property: a checkpoint-rooted audit of the retained
    suffix reaches the same verdicts — including uPoM blame on injected
    Byzantine execution — as the genesis audit did before truncation."""

    @pytest.fixture(scope="class")
    def tampered(self):
        behaviors = {
            i: TamperExecution(
                procedure="smallbank.send_payment",
                mutate=lambda reply: {**reply, "src_balance": 10**9},
            )
            for i in range(4)
        }
        # GC deferred (huge age floor) so the genesis audit sees the full
        # ledger; truncation is then forced for the checkpoint-rooted one.
        dep = build_deployment(
            params=GC_PARAMS.variant(ledger_gc_min_age=1e9), behaviors=behaviors, seed=b"gc-tamper"
        )
        client = dep.add_client(retry_timeout=0.5)
        dep.start()
        digests = run_waves(dep, client, waves=12, per_wave=25, gap=0.25)
        receipts = [client.receipts[d] for d in digests if d in client.receipts]
        return dep, client, receipts

    @staticmethod
    def _verdicts(result):
        return sorted((u.kind, u.seqno, u.blamed_replicas) for u in result.upoms)

    def test_same_verdicts_before_and_after_truncation(self, tampered):
        dep, client, receipts = tampered
        # Audit the receipts whose reference checkpoint dC the replicas
        # still hold (receipt collection has always been bounded by the
        # checkpoint GC of §3.4; ledger GC reuses exactly that horizon).
        primary = dep.primary()
        retained_dcs = {cp.digest() for cp in primary.checkpoints.values()}
        suffix_receipts = [r for r in receipts if r.checkpoint_digest in retained_dcs]
        assert len(suffix_receipts) > 20
        auditor = Auditor(dep.registry, dep.params)

        genesis_result = auditor.audit(
            suffix_receipts, [client.gov_chain], make_enforcer(dep)
        )
        assert not genesis_result.consistent
        assert dep.primary().ledger.base_index == 0

        for replica in dep.replicas:
            replica.params = replica.params.variant(ledger_gc_min_age=0.0)
        force_gc(dep)
        assert all(r.ledger.base_index > 0 for r in dep.replicas)

        cp_result = auditor.audit(suffix_receipts, [client.gov_chain], make_enforcer(dep))
        assert not cp_result.consistent
        assert self._verdicts(cp_result) == self._verdicts(genesis_result)
        blamed = cp_result.blamed_replicas()
        assert len(blamed) >= dep.genesis_config.f + 1

    def test_checkpoint_rooted_package_is_complete(self, tampered):
        dep, client, receipts = tampered
        primary = dep.primary()
        assert primary.ledger.base_index > 0  # truncated by the test above
        retained_dcs = {cp.digest() for cp in primary.checkpoints.values()}
        # These receipts' replay checkpoint IS the truncation boundary:
        # the audit spans the whole retained suffix from its first entry.
        spanning = [r for r in receipts if r.checkpoint_digest in retained_dcs]
        package = build_ledger_package(primary, min(spanning, key=lambda r: r.seqno))
        assert package.fragment.start == primary.ledger.base_index
        assert package.frontier is not None
        assert check_package_completeness(package, spanning) == []

    def test_receipt_below_retention_yields_note_not_blame(self, tampered):
        dep, client, receipts = tampered
        primary = dep.primary()
        assert primary.ledger.base_index > 0
        oldest_batch = primary.ledger.oldest_retained_seqno()
        stale = [r for r in receipts if r.seqno < oldest_batch]
        assert stale, "expected some receipts below the retention horizon"
        enforcer = make_enforcer(dep)
        result = Auditor(dep.registry, dep.params).audit(
            stale[:3], [client.gov_chain], enforcer
        )
        assert result.upoms == []
        assert any("retention:" in note for note in result.notes)
        assert enforcer.punished_members() == set()

    def test_stale_receipt_with_missing_checkpoint_is_noted_not_crashed(self, tampered):
        """A checkpoint-rooted package with no checkpoint at all (e.g. a
        responder that cannot match a below-retention dC) must classify as
        retention-excused, not crash or blame."""
        dep, client, receipts = tampered
        primary = dep.primary()
        assert primary.ledger.base_index > 0
        stale = [r for r in receipts if r.seqno < primary.ledger.oldest_retained_seqno()]
        package = build_ledger_package(primary, stale[0])
        package.checkpoint = None
        problems = check_package_completeness(package, stale[:1])
        assert problems and all(p.startswith("retention:") for p in problems)

    def test_mixed_stale_and_fresh_receipts_still_audited(self, tampered):
        """Receipts below retention are noted and dropped, but the ones
        the suffix still covers get the full audit — the stale subset
        must not shield in-window misbehavior."""
        from repro.audit import UPOM_WRONG_EXECUTION

        dep, client, receipts = tampered
        primary = dep.primary()
        assert primary.ledger.base_index > 0
        retained_dcs = {cp.digest() for cp in primary.checkpoints.values()}
        fresh = [r for r in receipts if r.checkpoint_digest in retained_dcs]
        stale = [r for r in receipts if r.seqno < primary.ledger.oldest_retained_seqno()]
        assert fresh and stale
        result = Auditor(dep.registry, dep.params).audit(
            stale[:2] + fresh, [client.gov_chain], make_enforcer(dep)
        )
        assert any("retention:" in note for note in result.notes)
        assert any(u.kind == UPOM_WRONG_EXECUTION for u in result.upoms)
        assert len(result.blamed_replicas()) >= dep.genesis_config.f + 1

    def test_tampered_frontier_is_attributable(self, tampered):
        dep, client, receipts = tampered
        primary = dep.primary()
        retained_dcs = {cp.digest() for cp in primary.checkpoints.values()}
        good = [r for r in receipts if r.checkpoint_digest in retained_dcs]
        package = build_ledger_package(primary, min(good, key=lambda r: r.seqno))
        peaks = list(package.frontier)
        height, _ = peaks[0]
        peaks[0] = (height, b"\x13" * 32)
        package.frontier = tuple(peaks)
        problems = check_package_completeness(package, good)
        assert any("root_m" in p for p in problems)


class TestReplyxForCollectedBatch:
    def test_gc_fallback_reports_vouching_checkpoint(self, gc_run):
        dep, client, digests = gc_run
        replica = dep.primary()
        oldest = replica.ledger.oldest_retained_seqno()
        victim = next(
            d for d in digests
            if d in replica.tx_locations and replica.tx_locations[d][0] < oldest - 1
        )
        # Model a client that lost (or never completed) the receipt and
        # asks for the replyx long after the batch was collected.  One
        # replica's word is not enough (a lone Byzantine replica must not
        # kill a live receipt); f + 1 reports are.
        wire = client.receipts[victim].request_wire
        del client.receipts[victim]
        client.collector._done.pop(victim, None)
        client.collector.track(victim, wire, now=dep.net.scheduler.now)
        client.send(replica.address, ("get-replyx", victim))
        # Window shorter than the client's retry timer: exactly one
        # replica has reported so far — not believed yet.
        dep.run(until=dep.net.scheduler.now + 0.2)
        assert victim not in client.gc_unavailable
        assert len(client._gone_reports.get(victim, {})) == 1
        for other in dep.replicas[:dep.genesis_config.f + 1]:
            client.send(other.address, ("get-replyx", victim))
        dep.run(until=dep.net.scheduler.now + 0.2)
        assert victim in client.gc_unavailable
        cp_seqno, cp_digest = client.gc_unavailable[victim]
        assert cp_seqno >= replica.tx_locations[victim][0]
        assert cp_digest == replica.checkpoints[cp_seqno].digest()
        counters = replica.metrics.summary()["counters"]
        assert counters.get("receipts_gone_gc", 0) >= 1

    def test_retained_batches_still_rebuild_from_ledger(self, gc_run):
        dep, client, digests = gc_run
        replica = dep.primary()
        oldest = replica.ledger.oldest_retained_seqno()
        kept = next(
            d for d in reversed(digests)
            if d in replica.tx_locations
            and oldest <= replica.tx_locations[d][0] <= replica.committed_upto
            and replica.batches.get(replica.tx_locations[d][0]) is None
        )
        wire = client.receipts[kept].request_wire
        del client.receipts[kept]
        client.collector._done.pop(kept, None)
        client.collector.track(kept, wire, now=dep.net.scheduler.now)
        before = replica.metrics.summary()["counters"].get("receipts_rebuilt_from_ledger", 0)
        client.send(replica.address, ("get-replyx", kept))
        dep.run(until=dep.net.scheduler.now + 1.0)
        after = replica.metrics.summary()["counters"].get("receipts_rebuilt_from_ledger", 0)
        assert after == before + 1


class TestStateSyncBelowRetention:
    def _partitioned_run(self, seed):
        dep = build_deployment(params=GC_PARAMS, seed=seed)
        client = dep.add_client(retry_timeout=0.5)
        dep.start()
        wl = SmallBankWorkload(n_accounts=200, seed=9)

        def wave():
            for _ in range(10):
                client.submit(*wl.next_transaction(), min_index=0)

        for i in range(45):
            dep.net.scheduler.at(0.05 + i * 0.1, wave)
        # The victim freezes almost immediately; by heal time the others
        # have checkpointed *and truncated* far past its whole ledger.
        dep.partition_replicas([3], start=0.2, duration=3.0)
        dep.run(until=9.0)
        return dep, client, dep.replicas[3]

    def test_refused_splice_falls_back_to_checkpoint_rooted_transfer(self):
        dep, client, victim = self._partitioned_run(b"gc-sync")
        servers_retained = min(r.ledger.base_index for r in dep.replicas[:3])
        assert servers_retained > 0, "servers never truncated; scenario is vacuous"
        counters = victim.metrics.summary()["counters"]
        assert counters.get("sync_sessions_completed", 0) >= 1
        assert counters.get("sync_cp_rooted_transfers", 0) >= 1
        server_counters = [
            r.metrics.summary()["counters"].get("sync_suffix_refusals", 0)
            for r in dep.replicas[:3]
        ]
        assert sum(server_counters) >= 1
        # The victim is checkpoint-rooted now: no genesis prefix, yet it
        # rejoined consensus and agrees with everyone.
        assert victim.ledger.base_index > 0
        frontier = max(r.committed_upto for r in dep.replicas)
        assert victim.committed_upto == frontier
        assert dep.ledgers_agree()
        assert len({r.kv.state_digest() for r in dep.replicas}) == 1

    def test_checkpoint_rooted_replica_keeps_committing(self):
        dep, client, victim = self._partitioned_run(b"gc-sync2")
        assert victim.ledger.base_index > 0
        before = victim.committed_upto
        wl = SmallBankWorkload(n_accounts=200, seed=17)
        for _ in range(30):
            client.submit(*wl.next_transaction(), min_index=0)
        dep.run(until=dep.net.scheduler.now + 2.0)
        assert victim.committed_upto > before
        assert dep.ledgers_agree()


class TestLegacyFetchAfterGC:
    def test_fetch_ledger_on_collected_prefix_falls_back_to_state_sync(self, gc_run):
        """The legacy whole-ledger fetch (view-change catch-up path) gets
        an explicit `ledger-gone` from a GC'd peer and recovers through
        the checkpoint-rooted sync protocol instead of waiting forever."""
        dep, client, _ = gc_run
        requester, server = dep.replicas[1], dep.primary()
        assert server.ledger.base_index > 0
        # An *unsolicited* ledger-gone must be ignored (a Byzantine peer
        # cannot suspend honest replicas into transfers at will)...
        server.send(requester.address, ("ledger-gone",))
        dep.run(until=dep.net.scheduler.now + 0.5)
        assert requester.metrics.summary()["counters"].get("sync_started_ledger_gone", 0) == 0
        assert requester.ready
        # ...while the tracked legacy fetch gets the answer and recovers
        # through state sync.
        requester._send_fetch_ledger(server.address)
        dep.run(until=dep.net.scheduler.now + 2.0)
        counters = requester.metrics.summary()["counters"]
        assert counters.get("sync_started_ledger_gone", 0) >= 1
        # The requester was already caught up, so the session resolves and
        # normal operation resumes.
        assert requester.ready and not requester.syncing
        assert dep.ledgers_agree()
