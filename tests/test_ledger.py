"""Ledger entries, append/truncate, fragments, and batch indexing."""

import pytest

from repro.errors import LedgerError
from repro.crypto import generate_keypair, default_backend
from repro.ledger import (
    CheckpointTxEntry,
    EvidenceEntry,
    GenesisEntry,
    Ledger,
    LedgerFragment,
    NoncesEntry,
    PrePrepareEntry,
    TxEntry,
    entry_from_wire,
)
from repro.lpbft.messages import PrePrepare, Prepare, TransactionRequest


def make_request(n=0):
    kp = generate_keypair(b"client")
    req = TransactionRequest(
        procedure="p", args={"n": n}, client=kp.public_key,
        service=b"\x01" * 32, min_index=0, nonce=n,
    )
    return req.with_signature(default_backend().sign(kp, req.signed_payload()))


def make_pp(view=0, seqno=1, **kw):
    fields = dict(
        view=view, seqno=seqno, root_m=b"\x02" * 32, root_g=b"\x03" * 32,
        nonce_commitment=b"\x04" * 32, evidence_bitmap=0, gov_index=0,
        checkpoint_digest=b"\x05" * 32,
    )
    fields.update(kw)
    return PrePrepare(**fields)


class TestEntries:
    def test_genesis_service_name_is_digest(self):
        entry = GenesisEntry(config_wire=("configuration", 0, (), (), 1))
        assert entry.service_name() == entry.digest()

    @pytest.mark.parametrize(
        "entry",
        [
            GenesisEntry(config_wire=("c",)),
            TxEntry(request_wire=make_request().to_wire(), index=3, output={"reply": 1, "ws": b"\x00" * 32}),
            CheckpointTxEntry(cp_seqno=10, cp_digest=b"\x06" * 32, ledger_size=40, ledger_root=b"\x07" * 32, index=5),
            EvidenceEntry(seqno=4, view=0, prepare_wires=(Prepare(1, b"\x08" * 32, b"\x09" * 32, b"sig").to_wire(),)),
            NoncesEntry(seqno=4, view=0, bitmap=0b111, nonces=(b"\x0a" * 32,) * 3),
            PrePrepareEntry(pp_wire=make_pp().to_wire()),
        ],
        ids=lambda e: e.kind,
    )
    def test_wire_roundtrip(self, entry):
        again = entry_from_wire(entry.to_wire())
        assert again == entry
        assert again.digest() == entry.digest()

    def test_unknown_tag_rejected(self):
        with pytest.raises(LedgerError):
            entry_from_wire(("bogus", 1))

    def test_malformed_entry_rejected(self):
        with pytest.raises(LedgerError):
            entry_from_wire(("tx",))

    def test_tx_entry_tio(self):
        req = make_request()
        entry = TxEntry(request_wire=req.to_wire(), index=7, output={"reply": "ok", "ws": b"\x00" * 32})
        t, i, o = entry.tio()
        assert t == req.to_wire() and i == 7

    def test_encoded_size_positive(self):
        assert GenesisEntry(config_wire=("c",)).encoded_size() > 0


class TestLedger:
    def build(self, n_batches=3, txs_per_batch=2):
        ledger = Ledger(GenesisEntry(config_wire=("c",)))
        counter = 0
        for s in range(1, n_batches + 1):
            ledger.append(PrePrepareEntry(pp_wire=make_pp(seqno=s).to_wire()))
            for _ in range(txs_per_batch):
                counter += 1
                ledger.append(
                    TxEntry(
                        request_wire=make_request(counter).to_wire(),
                        index=len(ledger),
                        output={"reply": counter, "ws": b"\x00" * 32},
                    )
                )
        return ledger

    def test_append_and_index(self):
        ledger = self.build()
        assert len(ledger) == 1 + 3 * 3
        assert ledger.last_seqno() == 3
        info = ledger.batch(2)
        assert info.tx_count == 2
        assert ledger.batch_pre_prepare(2).seqno == 2

    def test_batch_entries(self):
        ledger = self.build()
        entries = ledger.batch_entries(1)
        assert len(entries) == 2
        assert all(isinstance(e, TxEntry) for e in entries)

    def test_root_changes_per_append(self):
        ledger = Ledger(GenesisEntry(config_wire=("c",)))
        r0 = ledger.root()
        ledger.append(PrePrepareEntry(pp_wire=make_pp().to_wire()))
        assert ledger.root() != r0

    def test_root_at_history(self):
        ledger = self.build()
        full_root = ledger.root()
        mid = ledger.root_at(4)
        assert mid != full_root
        assert ledger.root_at(len(ledger)) == full_root

    def test_truncate_removes_batches(self):
        ledger = self.build(n_batches=3)
        size_after_two = ledger.batch(2).end
        removed = ledger.truncate(size_after_two)
        assert ledger.last_seqno() == 2
        assert len(removed) == 3  # pp + 2 txs of batch 3
        assert ledger.batch(3) is None

    def test_truncate_bad_size(self):
        with pytest.raises(LedgerError):
            self.build().truncate(999)

    def test_out_of_range_entry(self):
        with pytest.raises(LedgerError):
            self.build().entry(999)

    def test_unknown_batch(self):
        with pytest.raises(LedgerError):
            self.build().batch_entries(9)


class TestFragments:
    def test_fragment_roundtrip(self):
        ledger = TestLedger().build()
        frag = ledger.fragment(0)
        entries = frag.entries()
        assert len(entries) == len(ledger)
        assert entries[0] == ledger.entry(0)

    def test_fragment_to_ledger(self):
        ledger = TestLedger().build()
        again = ledger.fragment(0).to_ledger()
        assert again.root() == ledger.root()
        assert again.last_seqno() == ledger.last_seqno()

    def test_partial_fragment_cannot_materialize(self):
        ledger = TestLedger().build()
        with pytest.raises(LedgerError):
            ledger.fragment(2).to_ledger()

    def test_fragment_entry_by_absolute_index(self):
        ledger = TestLedger().build()
        frag = ledger.fragment(2, 6)
        assert frag.entry(3) == ledger.entry(3)
        with pytest.raises(LedgerError):
            frag.entry(0)

    def test_bad_range(self):
        with pytest.raises(LedgerError):
            TestLedger().build().fragment(5, 2)

    def test_gov_index_tracking(self):
        ledger = Ledger(GenesisEntry(config_wire=("c",)))
        assert ledger.last_gov_index == 0
        ledger.append(PrePrepareEntry(pp_wire=make_pp().to_wire()))
        kp = generate_keypair(b"m")
        gov_req = TransactionRequest(
            procedure="gov.vote", args={}, client=kp.public_key,
            service=b"\x01" * 32, min_index=0, nonce=1,
        )
        ledger.append(TxEntry(request_wire=gov_req.to_wire(), index=2, output={}))
        assert ledger.last_gov_index == 2
        assert ledger.governance_indices() == [0, 2]
