"""PR 9: sequencing work-window W and aggregate receipt signatures.

Window edge cases the tentpole must survive: a view change with W rounds
in flight (no lost or duplicated sequence numbers), a checkpoint
boundary landing inside the window, and W=1 reproducing today's behavior
byte for byte.  Aggregation: one ``verify_aggregate`` op per receipt,
smaller wire encodings, and the individual-share fallback that assigns
blame when an aggregate fails.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.chaos import ChaosParams, generate_schedule, run_schedule
from repro.crypto import signatures
from repro.errors import CryptoError
from repro.lpbft import ProtocolParams
from repro.lpbft.messages import Reply, ReplyX
from repro.obs import PeriodicSampler, perfetto_trace
from repro.receipts import Receipt, ReceiptCollector, verify_receipt
from repro.workloads import SmallBankWorkload

from helpers import build_deployment, run_workload

WINDOW_PARAMS = ProtocolParams(
    pipeline=2, max_batch=20, checkpoint_interval=20,
    batch_delay=0.0005, view_change_timeout=0.3, work_window=3,
)

# Bounded like tests/test_chaos.py FAST, with the work window opened.
FAST_W2 = ChaosParams(
    fault_end=1.5, quiescence=4.0, load_rate=150.0, n_events=6, work_window=2,
)


class CountingBackend:
    """Wraps a backend and counts individual vs aggregate verify ops."""

    def __init__(self, inner):
        self._inner = inner
        self.name = inner.name
        self.supports_aggregation = inner.supports_aggregation
        self.verifies = 0
        self.agg_verifies = 0

    def verify(self, public_key, message, signature):
        self.verifies += 1
        return self._inner.verify(public_key, message, signature)

    def verify_aggregate(self, pairs, agg):
        self.agg_verifies += 1
        return self._inner.verify_aggregate(pairs, agg)


# -- parameter arithmetic -------------------------------------------------------


class TestEffectivePipeline:
    def test_w1_effective_equals_pipeline(self):
        for pipeline in (1, 2, 6):
            params = ProtocolParams(pipeline=pipeline, work_window=1)
            assert params.effective_pipeline() == pipeline

    def test_window_widens_evidence_lag(self):
        assert ProtocolParams(pipeline=2, work_window=3).effective_pipeline() == 4

    def test_work_window_must_be_positive(self):
        with pytest.raises(ValueError):
            ProtocolParams(work_window=0)

    def test_checkpoint_interval_clamps_window(self):
        # C must exceed the *effective* pipeline, not just P.
        with pytest.raises(ValueError):
            ProtocolParams(pipeline=2, work_window=4, checkpoint_interval=5)
        ProtocolParams(pipeline=2, work_window=4, checkpoint_interval=6)

    def test_chaos_replay_flag_round_trips(self):
        assert "--work-window 2" in FAST_W2.cli_args()
        assert "--work-window" not in ChaosParams(fault_end=1.5).cli_args()


# -- windowed sequencing --------------------------------------------------------


def _max_occupancy(params, n_tx=200, until=3.0):
    """Run a burst and sample every replica's window occupancy densely."""
    dep = build_deployment(params=params, seed=b"pr9-occ")
    client = dep.add_client(retry_timeout=0.5)
    dep.start()
    peak = [0]

    def sample():
        peak[0] = max(peak[0], max(r.window_occupancy() for r in dep.replicas))

    dep.net.scheduler.every(0.001, sample)
    digests = run_workload(dep, client, n_tx=n_tx, until=until)
    assert len(client.receipts) == len(digests)
    assert dep.ledgers_agree()
    return peak[0]


class TestWindowedSequencing:
    def test_occupancy_bounded_by_effective_pipeline(self):
        # W=1: never more than P rounds in flight (today's behavior).
        assert _max_occupancy(WINDOW_PARAMS.variant(work_window=1)) <= 2

    def test_window_overlaps_more_rounds(self):
        # W=3: the primary provably keeps more than P rounds in flight,
        # and never more than the effective pipeline P + W - 1 = 4.
        peak = _max_occupancy(WINDOW_PARAMS)
        assert peak > 2
        assert peak <= WINDOW_PARAMS.effective_pipeline()

    def test_window_full_shed_reason_exists(self):
        # The admission gate only arms at W > 1; at W=1 the verdict set
        # is unchanged.
        params = WINDOW_PARAMS.variant(work_window=1)
        dep = build_deployment(params=params, seed=b"pr9-gate")
        dep.start()
        replica = dep.replicas[0]
        assert replica.params.work_window == 1
        assert replica._admission_check() is None


class TestViewChangeWithWindowInFlight:
    @pytest.fixture(scope="class")
    def failover_run(self):
        """Primary partitioned with W rounds in flight: the view change
        must drain the window without losing or duplicating seqnos."""
        dep = build_deployment(params=WINDOW_PARAMS, seed=b"pr9-vc")
        client = dep.add_client(retry_timeout=0.5)
        dep.start()
        wl = SmallBankWorkload(n_accounts=200, seed=11)
        digests = [client.submit(*wl.next_transaction(), min_index=0) for _ in range(60)]
        dep.run(until=0.2)
        dep.net.partition(
            {"replica-0"}, {"replica-1", "replica-2", "replica-3", client.address}
        )
        digests += [client.submit(*wl.next_transaction(), min_index=0) for _ in range(30)]
        dep.run(until=4.0)
        dep.net.heal_partitions()
        digests += [client.submit(*wl.next_transaction(), min_index=0) for _ in range(20)]
        dep.run(until=12.0)
        return dep, client, digests

    def test_view_advanced(self, failover_run):
        dep, _, _ = failover_run
        assert all(r.view >= 1 for r in dep.replicas[1:])

    def test_all_receipts_complete(self, failover_run):
        dep, client, digests = failover_run
        assert len(client.receipts) == len(digests)

    def test_no_seqno_lost_or_duplicated(self, failover_run):
        """Every committed batch occupies exactly one slot: seqnos of
        stored batches are unique and gapless up to the commit frontier,
        and every receipt's ledger index resolves to its output."""
        dep, client, digests = failover_run
        replica = dep.replicas[1]
        committed = replica.committed_upto
        seqnos = sorted(s for s in replica.batches if s <= committed)
        assert seqnos == list(range(1, committed + 1))
        ledger = replica.ledger
        for d in digests:
            receipt = client.receipts[d]
            assert ledger.entry_at_index(receipt.index).output == receipt.output

    def test_ledgers_agree(self, failover_run):
        dep, _, _ = failover_run
        assert dep.ledgers_agree()

    def test_old_primary_caught_up(self, failover_run):
        dep, _, _ = failover_run
        frontier = max(r.committed_upto for r in dep.replicas)
        assert dep.replicas[0].committed_upto == frontier


class TestCheckpointBoundaryAtWindowEdge:
    def test_window_crosses_checkpoint_boundaries(self):
        """A small checkpoint interval forces the open window to span
        checkpoint boundaries repeatedly; stabilization must not stall
        the pipeline or wedge the window."""
        params = WINDOW_PARAMS.variant(checkpoint_interval=6)
        dep = build_deployment(params=params, seed=b"pr9-cp")
        client = dep.add_client(retry_timeout=0.5)
        dep.start()
        digests = run_workload(dep, client, n_tx=400, until=8.0)
        assert len(client.receipts) == len(digests)
        replica = dep.replicas[0]
        # Several boundaries crossed, checkpoints taken past them.
        assert replica.committed_upto >= 3 * params.checkpoint_interval
        assert replica.last_taken_cp >= 2 * params.checkpoint_interval
        assert dep.ledgers_agree()


class TestW1Identity:
    def test_w1_chaos_trace_identical_to_default(self):
        """``work_window=1`` must be byte-identical to the pre-window
        protocol: the pinned chaos digests (tests/test_chaos.py) pin the
        default params, and an explicit W=1 run replays the same trace."""
        base = ChaosParams(fault_end=1.5, quiescence=4.0, load_rate=150.0, n_events=6)
        explicit = dataclasses.replace(base, work_window=1)
        a = run_schedule(generate_schedule(1, base))
        b = run_schedule(generate_schedule(1, explicit))
        assert a.trace == b.trace
        assert a.trace_digest == b.trace_digest

    @pytest.mark.parametrize("seed", [1, 2])
    def test_pinned_window_seed_runs_clean(self, seed):
        """The fuzzer's param space includes ``work_window > 1``: pinned
        seeds run the full fault matrix with the window open."""
        result = run_schedule(generate_schedule(seed, FAST_W2))
        assert result.ok, (
            f"oracle violations: {result.violations}; "
            f"replay with: {result.replay_command}"
        )


# -- aggregate signatures -------------------------------------------------------


class TestAggregateOps:
    def test_aggregate_round_trip(self):
        backend = signatures.HashSigBackend()
        pairs = []
        sigs = []
        for i in range(3):
            kp = backend.generate(seed=bytes([i]))
            message = b"msg-%d" % i
            sigs.append(backend.sign(kp, message))
            pairs.append((kp.public_key, message))
        agg = backend.aggregate(sigs)
        assert len(agg.value) == signatures.SIGNATURE_SIZE
        assert agg.n_shares == 3
        assert backend.verify_aggregate(pairs, agg)

    def test_wrong_message_rejected(self):
        backend = signatures.HashSigBackend()
        kp0 = backend.generate(seed=b"\x00")
        kp1 = backend.generate(seed=b"\x01")
        agg = backend.aggregate(
            [backend.sign(kp0, b"alpha"), backend.sign(kp1, b"beta")]
        )
        assert backend.verify_aggregate(
            [(kp0.public_key, b"alpha"), (kp1.public_key, b"beta")], agg
        )
        assert not backend.verify_aggregate(
            [(kp0.public_key, b"alpha"), (kp1.public_key, b"gamma")], agg
        )

    def test_share_count_must_match(self):
        backend = signatures.HashSigBackend()
        kp = backend.generate(seed=b"\x07")
        agg = backend.aggregate([backend.sign(kp, b"only")])
        assert not backend.verify_aggregate(
            [(kp.public_key, b"only"), (kp.public_key, b"only")], agg
        )

    def test_empty_aggregate_rejected(self):
        with pytest.raises(CryptoError):
            signatures.HashSigBackend().aggregate([])

    def test_wire_round_trip(self):
        agg = signatures.AggregateSignature(value=b"\x55" * 64, n_shares=3)
        assert signatures.AggregateSignature.from_wire(agg.to_wire()) == agg

    def test_ed25519_has_no_aggregation(self):
        try:
            backend = signatures.Ed25519Backend()
        except CryptoError:
            pytest.skip("cryptography package not available")
        assert not backend.supports_aggregation
        with pytest.raises(CryptoError):
            backend.aggregate([b"\x00" * 64])


class TestAggregatedReceipts:
    @pytest.fixture(scope="class")
    def agg_run(self):
        params = WINDOW_PARAMS.variant(work_window=1, aggregate_signatures=True)
        dep = build_deployment(params=params, seed=b"pr9-agg")
        client = dep.add_client(retry_timeout=0.5)
        dep.start()
        digests = run_workload(dep, client, n_tx=40)
        return dep, client, digests

    def test_receipts_carry_aggregate(self, agg_run):
        dep, client, digests = agg_run
        assert len(client.receipts) == len(digests)
        for d in digests:
            receipt = client.receipts[d]
            assert receipt.aggregate is not None
            assert receipt.prepare_signatures == ()
            # uPoM still identifies the signer set.
            assert len(receipt.signers()) >= dep.genesis_config.quorum

    def test_one_verify_op_per_receipt(self, agg_run):
        """The acceptance criterion: client receipt verification drops
        from f+1 signature checks to a single aggregate check."""
        dep, client, digests = agg_run
        counting = CountingBackend(dep.backend)
        receipt = client.receipts[digests[0]]
        assert verify_receipt(receipt, dep.genesis_config, counting)
        assert counting.agg_verifies == 1
        assert counting.verifies == 0

    def test_wire_round_trip(self, agg_run):
        _, client, digests = agg_run
        receipt = client.receipts[digests[0]]
        back = Receipt.from_wire(receipt.to_wire())
        assert back == receipt

    def test_aggregate_shrinks_receipts(self, agg_run):
        """Tab. 1 effect: f individual prepare-signature strings leave
        the wire; one 64-byte aggregate replaces them."""
        dep, client, digests = agg_run
        params = WINDOW_PARAMS.variant(work_window=1)
        dep2 = build_deployment(params=params, seed=b"pr9-agg")
        client2 = dep2.add_client(retry_timeout=0.5)
        dep2.start()
        digests2 = run_workload(dep2, client2, n_tx=40)
        agg_size = client.receipts[digests[0]].encoded_size()
        plain_size = client2.receipts[digests2[0]].encoded_size()
        f = dep.genesis_config.f
        assert agg_size < plain_size
        # At least (f − 1) × 64-byte signature strings net savings.
        assert plain_size - agg_size >= (f - 1) * signatures.SIGNATURE_SIZE

    def test_batch_receipt_from_ledger_aggregated(self, agg_run):
        dep, _, _ = agg_run
        replica = dep.replicas[0]
        seqno = replica.committed_upto
        receipt = replica.receipt_from_ledger(seqno, None)
        assert receipt is not None and receipt.aggregate is not None
        assert verify_receipt(receipt, dep.genesis_config, dep.backend)

    def test_fallback_assigns_blame(self, agg_run):
        """A corrupted share breaks the aggregate; the collector falls
        back to individual shares, drops the culprit, and re-aggregates
        the surviving quorum."""
        dep, client, digests = agg_run
        receipt = client.receipts[digests[0]]
        replies, replyx = _reply_messages(dep, receipt, digests[0])
        config = dep.genesis_config
        primary_id = config.primary_for_view(receipt.view)
        bad = max(r for r in replies if r != primary_id)
        replies[bad] = dataclasses.replace(replies[bad], signature=b"\x00" * 64)
        collector = ReceiptCollector(config, backend=dep.backend, aggregate=True)
        collector.track(digests[0], receipt.request_wire)
        collector.add_replyx(digests[0], replyx)
        done = None
        for r in sorted(replies):
            done = collector.add_reply(digests[0], replies[r])
        assert done is not None
        assert done.aggregate is not None
        assert bad not in done.signers()
        assert verify_receipt(done, config, dep.backend)


def _reply_messages(dep, receipt, tx_digest):
    """Rebuild the raw reply/replyx messages for a committed transaction."""
    replies = {}
    for replica in dep.replicas:
        record = replica.batches[receipt.seqno]
        nonce = replica.own_nonces[(record.view, record.seqno)]
        config = replica.config_for(record.seqno)
        if replica.id == config.primary_for_view(record.view):
            signature = record.pp.signature
        else:
            signature = replica.prepares_by_ppd[record.pp_digest][replica.id].signature
        replies[replica.id] = Reply(
            view=record.view, seqno=record.seqno, replica=replica.id,
            signature=signature, nonce=nonce.nonce,
        )
    primary = dep.primary()
    record = primary.batches[receipt.seqno]
    position = record.tx_digests.index(tx_digest)
    replyx = ReplyX(
        view=record.view, seqno=record.seqno, root_m=record.pp.root_m,
        primary_nonce_commitment=record.pp.nonce_commitment,
        evidence_bitmap=record.pp.evidence_bitmap, gov_index=record.pp.gov_index,
        checkpoint_digest=record.pp.checkpoint_digest, flags=record.pp.flags,
        committed_root=record.pp.committed_root, tx_digest=tx_digest,
        index=record.tios[position][1], output=record.tios[position][2],
        path=record.g_tree.path(position).to_wire(),
    )
    return replies, replyx


# -- observability --------------------------------------------------------------


class TestWindowObservability:
    def test_sampler_reports_window_occupancy(self):
        dep = build_deployment(params=WINDOW_PARAMS, seed=b"pr9-obs")
        sampler = PeriodicSampler(dep, interval=0.05).install()
        client = dep.add_client(retry_timeout=0.5)
        dep.start()
        run_workload(dep, client, n_tx=60, until=3.0)
        rows = sampler.series(kind="replica")
        assert rows
        assert all("window_occupancy" in row for row in rows)
        assert all(row["window_occupancy"] >= 0 for row in rows)

    def test_perfetto_window_counter_track(self):
        dep = build_deployment(params=WINDOW_PARAMS, seed=b"pr9-obs")
        tracer = dep.enable_tracing()
        client = dep.add_client(retry_timeout=0.5)
        dep.start()
        run_workload(dep, client, n_tx=40, until=3.0)
        trace = perfetto_trace(tracer)
        counters = [
            e for e in trace["traceEvents"]
            if e.get("ph") == "C" and e["name"] == "window_occupancy"
        ]
        assert counters, "expected a window_occupancy counter track"
        peaks = [e["args"]["rounds_in_flight"] for e in counters]
        assert max(peaks) >= 1
        assert min(peaks) >= 0
