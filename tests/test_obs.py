"""Observability layer: instruments, span tracing, sampling, export.

Covers the PR 7 acceptance criteria directly: the disabled path is a
true no-op (no spans, no contexts, no per-request allocations), same
seed produces a byte-identical Perfetto export, and a single traced
request on a 4-replica deployment yields the full causal chain with
stage durations that telescope exactly to the measured end-to-end
latency.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import SimulationError
from repro.lpbft import Deployment
from repro.obs import (
    NULL_TRACER,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PeriodicSampler,
    Tracer,
    perfetto_trace,
    request_stages,
    spans_from_trace,
    stage_breakdown,
    write_perfetto,
)
from repro.obs.__main__ import main as obs_main
from repro.sim.cpu import VirtualCPU
from repro.sim.metrics import LatencyStats, MetricsCollector
from repro.workloads import register_noop


# -- instruments ----------------------------------------------------------------


class TestInstruments:
    def test_counter_labels_sum_to_total(self):
        c = Counter("shed")
        c.inc(2, reason="overloaded")
        c.inc(1, reason="deadline")
        c.inc(1)  # unlabeled series
        assert c.value() == 4
        assert c.value(reason="overloaded") == 2
        assert c.value(reason="deadline") == 1
        assert "reason=deadline" in c.series()

    def test_counter_rejects_negative(self):
        c = Counter("x")
        with pytest.raises(SimulationError):
            c.inc(-1)

    def test_gauge_set_inc_dec(self):
        g = Gauge("depth")
        g.set(5, lane=0)
        g.inc(2, lane=0)
        g.dec(1, lane=0)
        assert g.value(lane=0) == 6

    def test_histogram_is_latency_stats(self):
        h = Histogram("lat")
        for v in (0.1, 0.2, 0.3):
            h.observe(v)
        assert isinstance(h, LatencyStats)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["max"] == pytest.approx(0.3)

    def test_registry_get_or_create_and_type_check(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        with pytest.raises(SimulationError):
            reg.gauge("a")
        dump = reg.collect()
        assert "a" in dump["counters"]

    def test_collector_keeps_counters_shape(self):
        m = MetricsCollector()
        m.bump("requests_shed", reason="overloaded")
        m.bump("requests_shed", 2, reason="deadline")
        assert m.counters["requests_shed"] == 3
        assert m.counter_value("requests_shed", reason="deadline") == 2
        assert m.summary()["counters"]["requests_shed"] == 3

    def test_latency_p999_degenerates_to_max_when_sparse(self):
        ls = LatencyStats()
        for v in (0.1, 0.9):
            ls.record(v)
        assert ls.p999() == 0.9
        assert "latency_p999_ms" in MetricsCollector().summary()


# -- deployment helpers ---------------------------------------------------------


def _run_one_request(traced: bool):
    dep = Deployment(n_replicas=4, registry_setup=register_noop)
    tracer = dep.enable_tracing() if traced else None
    client = dep.add_client("c1")
    dep.start()
    client.submit("noop", {}, min_index=0)
    dep.run(until=5.0)
    assert client.receipts  # request completed
    return dep, tracer, client


# -- no-op path -----------------------------------------------------------------


class TestDisabledPath:
    def test_null_tracer_returns_none(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.root_span("x", "n", 0.0) is None
        assert NULL_TRACER.span("x", "n", 0.0) is None
        assert NULL_TRACER.annotate("x", "n", 0.0) is None

    def test_untraced_run_allocates_nothing(self):
        dep, _, client = _run_one_request(traced=False)
        for node in [*dep.replicas, *dep.clients]:
            assert node.tracer is NULL_TRACER
            assert node._send_ctx is None
            assert node._inbound_ctx is None
        for replica in dep.replicas:
            assert replica._trace_ctxs == {}
        assert client._root_spans == {}

    def test_tracing_does_not_change_outcomes(self):
        dep_a, _, client_a = _run_one_request(traced=False)
        dep_b, _, client_b = _run_one_request(traced=True)
        assert [r.committed_upto for r in dep_a.replicas] == [
            r.committed_upto for r in dep_b.replicas]
        assert client_a.metrics.latency.mean() == client_b.metrics.latency.mean()


# -- causal chain (acceptance) --------------------------------------------------


class TestCausalChain:
    def test_single_request_full_chain(self):
        dep, tracer, client = _run_one_request(traced=True)
        spans = tracer.finished_spans()
        names = [s.name for s in spans]
        assert names.count("request") == 1
        assert names.count("admission") == 1  # primary only
        assert names.count("stash") == 3  # each backup
        assert names.count("pre-prepare") == 1
        assert names.count("accept-pre-prepare") == 3
        assert names.count("execute") == 4
        assert names.count("quorum") == 4
        assert names.count("receipt") == 1
        root = next(s for s in spans if s.name == "request")
        assert root.parent_id is None
        # Every span belongs to the request's trace, parented within it.
        by_id = {s.span_id: s for s in spans}
        for span in spans:
            assert span.trace_id == root.trace_id
            if span.parent_id is not None:
                assert span.parent_id in by_id
        # The backups' accept spans hang off the primary's pre-prepare.
        pp = next(s for s in spans if s.name == "pre-prepare")
        accepts = [s for s in spans if s.name == "accept-pre-prepare"]
        assert all(s.parent_id == pp.span_id for s in accepts)

    def test_stages_telescope_to_e2e_latency(self):
        dep, tracer, client = _run_one_request(traced=True)
        row = request_stages(tracer.spans)
        assert row is not None
        assert sum(row["stages"].values()) == pytest.approx(row["e2e_s"], abs=1e-12)
        # and e2e matches what the client measured
        assert row["e2e_s"] == pytest.approx(client.metrics.latency.mean())
        breakdown = stage_breakdown(tracer)
        assert breakdown["requests"] == 1
        stage_sum = sum(v["mean_ms"] for v in breakdown["stages"].values())
        assert stage_sum == pytest.approx(breakdown["e2e"]["mean_ms"], abs=1e-9)


# -- export determinism ---------------------------------------------------------


def _export_bytes(tmp_path, tag: str) -> bytes:
    dep = Deployment(n_replicas=4, registry_setup=register_noop)
    tracer = dep.enable_tracing()
    client = dep.add_client("c1")
    dep.start()
    for i in range(3):
        client.submit("noop", {"i": i}, min_index=0)
    dep.run(until=5.0)
    path = tmp_path / f"trace_{tag}.json"
    write_perfetto(path, tracer, {r.address: r.cpu for r in dep.replicas})
    return path.read_bytes()


class TestExport:
    def test_same_seed_byte_identical(self, tmp_path):
        assert _export_bytes(tmp_path, "a") == _export_bytes(tmp_path, "b")

    def test_perfetto_shape_and_roundtrip(self, tmp_path):
        dep, tracer, _ = _run_one_request(traced=True)
        trace = perfetto_trace(tracer)
        phases = {e["ph"] for e in trace["traceEvents"]}
        assert "X" in phases and "M" in phases
        # flow arrows exist for the cross-node client -> replica edges
        assert "s" in phases and "f" in phases
        spans = spans_from_trace(json.loads(json.dumps(trace)))
        assert len(spans) == len(tracer.finished_spans())
        row = request_stages(spans)
        assert row is not None
        assert sum(row["stages"].values()) == pytest.approx(row["e2e_s"], abs=1e-9)

    def test_summarize_cli(self, tmp_path, capsys):
        dep, tracer, _ = _run_one_request(traced=True)
        path = tmp_path / "trace.json"
        write_perfetto(path, tracer)
        assert obs_main(["summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "requests: 1" in out
        assert "quorum" in out
        assert "critical path" in out


# -- sampler --------------------------------------------------------------------


class TestSampler:
    def test_rows_and_determinism(self):
        def run():
            dep = Deployment(n_replicas=4, registry_setup=register_noop)
            sampler = PeriodicSampler(dep, interval=0.5).install()
            client = dep.add_client("c1")
            dep.start()
            for i in range(4):
                client.submit("noop", {"i": i}, min_index=0)
            dep.run(until=2.0)
            return sampler

        a, b = run(), run()
        assert a.rows == b.rows
        replica_rows = a.series(kind="replica")
        assert replica_rows
        row = replica_rows[0]
        assert set(row) >= {"t", "goodput_tps", "lane_busy_fraction",
                            "stash_depth", "ledger_resident_entries"}
        assert sum(r["goodput_tps"] for r in replica_rows) > 0
        assert a.series(kind="clients")

    def test_bad_interval_rejected(self):
        dep = Deployment(n_replicas=4, registry_setup=register_noop)
        with pytest.raises(SimulationError):
            PeriodicSampler(dep, interval=0.0)


# -- windowed CPU utilization (satellite) ---------------------------------------


class TestWindowedUtilization:
    def test_matches_trace_based_computation(self):
        a, b = VirtualCPU(cores=4), VirtualCPU(cores=4)
        a.trace = []
        b.enable_utilization_tracking()
        work = [("verify", 0.004), ("execute", 0.01), ("hash", 0.002),
                ("append", 0.003), ("sign", 0.001), ("verify", 0.006)]
        for t in (0.0, 0.005, 0.012, 0.02):
            for kind, cost in work:
                a.submit(kind, cost, t)
                b.submit(kind, cost, t)
        for window in ((0.0, 0.05), (0.004, 0.02), (0.01, 0.011)):
            assert b.busy_window(*window) == pytest.approx(
                a.busy_between(*window))
            assert b.utilization_window(*window) == pytest.approx(
                a.utilization_between(*window))

    def test_requires_enabling(self):
        cpu = VirtualCPU(cores=2)
        with pytest.raises(SimulationError):
            cpu.busy_up_to(1.0)

    def test_queries_are_pure_and_order_independent(self):
        cpu = VirtualCPU(cores=2)
        cpu.enable_utilization_tracking()
        cpu.submit("verify", 0.01, 0.0)
        late = cpu.busy_up_to(1.0)
        early = cpu.busy_up_to(0.005)
        assert cpu.busy_up_to(1.0) == late  # repeatable
        assert early[0] == pytest.approx(0.005)
        assert late[0] == pytest.approx(0.01)
