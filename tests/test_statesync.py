"""State-sync units: chunked checkpoints, frontiers, wire messages."""

import random

import pytest

from repro import codec
from repro.errors import KVError, MerkleError, ProtocolError
from repro.crypto.hashing import digest_value
from repro.kvstore import (
    ChunkReassembler,
    KVStore,
    checkpoint_digest,
    chunk_digest,
    chunk_state,
)
from repro.kvstore.checkpoints import Checkpoint
from repro.merkle import (
    FrontierAccumulator,
    MerkleTree,
    frontier_from_wire,
    frontier_root,
)
from repro.statesync import SyncManifest, SyncOffer


def random_state(rng, n):
    state = {}
    for i in range(n):
        kind = rng.randrange(4)
        key = f"k/{rng.randrange(10 * n + 1):06d}"
        if kind == 0:
            state[key] = rng.randrange(-(2**40), 2**40)
        elif kind == 1:
            state[key] = rng.randbytes(rng.randrange(0, 64))
        elif kind == 2:
            state[key] = {"a": rng.random() < 0.5, "b": (1, "x", None)}
        else:
            state[key] = "v" * rng.randrange(0, 40)
    return state


class TestChunkRoundTrip:
    """Property: any chunking of a snapshot reassembles to the same
    checkpoint digest, and a tampered chunk is rejected."""

    @pytest.mark.parametrize("seed", range(6))
    def test_roundtrip_any_chunk_size(self, seed):
        rng = random.Random(seed)
        state = random_state(rng, rng.randrange(0, 120))
        expected = checkpoint_digest(state)
        for max_bytes in (1, 7, 64, 512, 10**6):
            chunks = chunk_state(state, max_bytes)
            assert all(isinstance(c, bytes) for c in chunks)
            # Bound respected except for single oversized pairs.
            for c in chunks:
                if len(c) > max_bytes:
                    assert len(list(codec.decode_stream(c))) == 1
            reassembler = ChunkReassembler(
                tuple(chunk_digest(c) for c in chunks), expected
            )
            order = list(range(len(chunks)))
            rng.shuffle(order)  # arrival order must not matter
            for i in order:
                assert reassembler.add(i, chunks[i])
            rebuilt = reassembler.reassemble()
            assert rebuilt == state
            assert checkpoint_digest(rebuilt) == expected

    def test_different_chunkings_same_digest(self):
        rng = random.Random(99)
        state = random_state(rng, 200)
        for max_bytes in (13, 1024):
            chunks = chunk_state(state, max_bytes)
            r = ChunkReassembler(tuple(chunk_digest(c) for c in chunks), checkpoint_digest(state))
            for i, c in enumerate(chunks):
                assert r.add(i, c)
            assert r.reassemble() == state

    def test_empty_state_one_chunk(self):
        chunks = chunk_state({}, 100)
        assert chunks == [b""]
        r = ChunkReassembler((chunk_digest(b""),), checkpoint_digest({}))
        assert r.add(0, b"")
        assert r.reassemble() == {}

    def test_tampered_chunk_rejected(self):
        rng = random.Random(5)
        state = random_state(rng, 80)
        chunks = chunk_state(state, 256)
        assert len(chunks) > 2
        r = ChunkReassembler(tuple(chunk_digest(c) for c in chunks), checkpoint_digest(state))
        bad = bytes(chunks[1][:-1]) + bytes([chunks[1][-1] ^ 1])
        assert not r.add(1, bad)
        assert 1 in r.missing()
        assert r.add(1, chunks[1])  # the honest bytes still go in

    def test_duplicate_chunk_idempotent(self):
        state = {"a": 1, "b": 2}
        chunks = chunk_state(state, 4)
        r = ChunkReassembler(tuple(chunk_digest(c) for c in chunks), checkpoint_digest(state))
        for i, c in enumerate(chunks):
            assert r.add(i, c)
            assert r.add(i, c)  # duplicated delivery
        assert r.reassemble() == state

    def test_missing_chunk_raises(self):
        state = {"a": 1, "b": 2, "c": 3}
        chunks = chunk_state(state, 4)
        assert len(chunks) >= 2
        r = ChunkReassembler(tuple(chunk_digest(c) for c in chunks), checkpoint_digest(state))
        r.add(0, chunks[0])
        with pytest.raises(KVError):
            r.reassemble()

    def test_swapped_chunks_rejected(self):
        # Chunks whose digests are listed in the wrong order cannot pass
        # the canonical key-order check even if each digest matches.
        state = {f"k{i:03d}": i for i in range(40)}
        chunks = chunk_state(state, 64)
        assert len(chunks) >= 2
        swapped = [chunks[1], chunks[0]] + chunks[2:]
        r = ChunkReassembler(
            tuple(chunk_digest(c) for c in swapped), checkpoint_digest(state)
        )
        for i, c in enumerate(swapped):
            assert r.add(i, c)
        with pytest.raises(KVError):
            r.reassemble()

    def test_wrong_final_digest_rejected(self):
        state = {"a": 1}
        chunks = chunk_state(state, 100)
        r = ChunkReassembler(tuple(chunk_digest(c) for c in chunks), b"\x00" * 32)
        for i, c in enumerate(chunks):
            assert r.add(i, c)
        with pytest.raises(KVError):
            r.reassemble()

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(KVError):
            chunk_state({}, 0)

    def test_checkpoint_to_chunks(self):
        kv = KVStore(initial={"x": 1, "y": (1, 2)})
        cp = Checkpoint.capture(kv, 4, 10, b"\x01" * 32)
        chunks = cp.to_chunks(8)
        r = ChunkReassembler(tuple(chunk_digest(c) for c in chunks), cp.digest())
        for i, c in enumerate(chunks):
            assert r.add(i, c)
        assert r.reassemble() == cp.state


class TestFrontier:
    def test_frontier_root_matches_root_at(self):
        tree = MerkleTree()
        rng = random.Random(3)
        for i in range(150):
            tree.append(digest_value(("leaf", i)))
            size = rng.randrange(1, len(tree) + 1)
            assert frontier_root(tree.frontier_at(size)) == tree.root_at(size)
        assert frontier_root(tree.frontier_at(0)) == tree.root_at(0)

    def test_accumulator_extends_like_full_tree(self):
        leaves = [digest_value(("leaf", i)) for i in range(97)]
        tree = MerkleTree(leaves)
        for size in (1, 2, 31, 64, 95):
            acc = FrontierAccumulator(tree.frontier_at(size))
            assert acc.size == size
            assert acc.root() == tree.root_at(size)
            for leaf in leaves[size:]:
                acc.append(leaf)
            assert acc.root() == tree.root()
            assert acc.size == len(leaves)

    def test_frontier_wire_validation(self):
        tree = MerkleTree([digest_value(("leaf", i)) for i in range(7)])
        peaks = tree.frontier_at(7)
        assert frontier_from_wire(tuple((h, d) for h, d in peaks)) == peaks
        with pytest.raises(MerkleError):
            frontier_from_wire(((0, b"\x01" * 32), (1, b"\x02" * 32)))  # ascending
        with pytest.raises(MerkleError):
            frontier_from_wire(((1, b"short"),))
        with pytest.raises(MerkleError):
            frontier_from_wire((("x",),))


class TestSyncMessageWire:
    def test_offer_roundtrip(self):
        offer = SyncOffer(
            cp_seqno=20, cp_digest=b"\x01" * 32, cp_ledger_size=200,
            cp_ledger_root=b"\x02" * 32, n_chunks=3, tip_seqno=36,
            tip_ledger_size=400, view=1,
        )
        wire = offer.to_wire()
        codec.decode(codec.encode(wire))  # codec-encodable
        assert SyncOffer.from_wire(wire) == offer
        with pytest.raises(ProtocolError):
            SyncOffer.from_wire(wire[:-1])
        with pytest.raises(ProtocolError):
            SyncOffer.from_wire(("nope",) + wire[1:])

    def test_manifest_roundtrip(self):
        manifest = SyncManifest(
            cp_seqno=20, cp_digest=b"\x01" * 32, cp_ledger_size=200,
            cp_ledger_root=b"\x02" * 32,
            chunk_digests=(b"\x03" * 32, b"\x04" * 32),
            frontier=((3, b"\x05" * 32), (1, b"\x06" * 32)),
        )
        wire = manifest.to_wire()
        codec.decode(codec.encode(wire))
        assert SyncManifest.from_wire(wire) == manifest
        with pytest.raises(ProtocolError):
            SyncManifest.from_wire(("bad",) + wire[1:])


class TestEncodeStream:
    def test_stream_roundtrip(self):
        values = [1, "two", b"three", (4, None), {"five": 5}]
        data = codec.encode_stream(values)
        assert list(codec.decode_stream(data)) == [1, "two", b"three", (4, None), {"five": 5}]
        assert data == b"".join(codec.encode(v) for v in values)


class TestLateJoinAfterActivation:
    """A proposed member that deploys only *after* its configuration has
    activated — and after ledger GC truncated the prefix holding the
    governance transactions — must still reach active membership.

    The checkpoint-rooted transfer cannot replay governance from the
    (collected) prefix, so the server attaches its governance chain and
    the newcomer verifies it from its own genesis anchor to recover the
    configuration schedule.  Pre-fix the newcomer adopted a genesis-only
    schedule, never considered itself a member, and was stranded forever.
    """

    def test_gc_truncated_prefix_newcomer_becomes_member(self):
        from helpers import FAST_PARAMS, build_deployment
        from repro.workloads import SmallBankWorkload

        params = FAST_PARAMS.variant(ledger_gc_min_age=0.2, view_change_timeout=5.0)
        dep = build_deployment(params=params, seed=b"latejoin-gc")
        rid = 4
        dep.provision_replica(rid)  # referendum first, deploy after activation
        client = dep.add_client(retry_timeout=0.5)
        members = {m: dep.member_client(m) for m in ("member-0", "member-1", "member-2")}
        dep.start()
        wl = SmallBankWorkload(n_accounts=200, seed=21)
        for _ in range(20):
            client.submit(*wl.next_transaction(), min_index=0)
        dep.run(until=0.3)

        new_config = dep.propose_successor(add=[rid])
        members["member-0"].submit(
            "gov.propose", {"member": "member-0", "config": new_config.to_wire()}, min_index=0
        )
        dep.run(until=0.5)
        for name in members:
            members[name].submit("gov.vote", {"member": name, "accept": True}, min_index=0)
            dep.run(until=dep.net.scheduler.now + 0.2)
        dep.run(until=3.0)
        assert all(r.schedule.current().number == 1 for r in dep.replicas)

        # Waves of traffic so checkpoints stabilise and GC collects the
        # prefix containing the governance transactions.
        for _ in range(6):
            for _ in range(25):
                client.submit(*wl.next_transaction(), min_index=0)
            dep.run(until=dep.net.scheduler.now + 0.4)
        dep.run(until=dep.net.scheduler.now + 1.0)
        assert any(r.ledger.base_index > 0 for r in dep.replicas), "precondition: GC never ran"

        t0 = dep.net.scheduler.now
        newcomer = dep.add_replica(rid)
        dep.run(until=t0 + 5.0)
        assert newcomer.schedule.current().number == 1
        assert newcomer.is_member()
        assert newcomer.metrics.counters.get("sync_chain_schedules_adopted", 0) >= 1

        # And it participates: fresh traffic commits on the newcomer too.
        n_rec = len(client.receipts)
        for _ in range(20):
            client.submit(*wl.next_transaction(), min_index=0)
        dep.run(until=dep.net.scheduler.now + 6.0)
        assert len(client.receipts) - n_rec == 20
        assert newcomer.committed_upto == max(r.committed_upto for r in dep.replicas)
