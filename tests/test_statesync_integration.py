"""State-sync integration: lagging, recovering, joining, Byzantine servers.

Every scenario runs a live deployment under sustained client load, with
the victim replica missing history deeper than a checkpoint interval —
so catch-up *must* go through checkpoint transfer, not batch-by-batch
retransmission.
"""

import pytest

from repro.byzantine import TamperSyncChunks
from repro.lpbft import ProtocolParams
from repro.workloads import SmallBankWorkload

from helpers import build_deployment

SYNC_PARAMS = ProtocolParams(
    pipeline=2, max_batch=20, checkpoint_interval=10,
    batch_delay=0.0005, view_change_timeout=2.0,
    sync_retry_timeout=0.25,
)


def sustained_load(dep, client, waves=40, per_wave=10, gap=0.1, start=0.05, seed=7):
    """Schedule submission waves so load keeps flowing while the victim
    replica is partitioned away (a plain loop would stop submitting)."""
    wl = SmallBankWorkload(n_accounts=200, seed=seed)

    def wave():
        for _ in range(per_wave):
            client.submit(*wl.next_transaction(), min_index=0)

    for i in range(waves):
        dep.net.scheduler.at(start + i * gap, wave)


def assert_caught_up(dep, replica, used_checkpoint=True):
    frontier = max(r.committed_upto for r in dep.replicas)
    assert replica.committed_upto == frontier
    assert dep.ledgers_agree()
    assert len({r.kv.state_digest() for r in dep.replicas}) == 1
    result = replica.sync_client.last_result
    assert result is not None and result["installed"]
    if used_checkpoint:
        # Catch-up restored the latest stable checkpoint and replayed only
        # the suffix — not the full ledger from genesis.
        assert result["cp_seqno"] >= dep.params.checkpoint_interval
        assert result["replayed_batches"] <= result["tip_seqno"] - result["cp_seqno"]
    return result


class TestPartitionHealCatchup:
    def test_isolated_replica_catches_up_via_state_transfer(self):
        dep = build_deployment(params=SYNC_PARAMS)
        client = dep.add_client(retry_timeout=0.5)
        dep.start()
        sustained_load(dep, client)
        # Isolated for 3 s of sustained load: the service moves well past
        # two checkpoint intervals (C = 10) in the meantime.
        dep.partition_replicas([3], start=0.2, duration=3.0)
        dep.run(until=8.0)
        victim = dep.replicas[3]
        counters = victim.metrics.summary()["counters"]
        assert counters.get("sync_sessions_completed", 0) >= 1
        result = assert_caught_up(dep, victim)
        frontier_gap = result["tip_seqno"] - 2  # victim froze at ~batch 2
        assert frontier_gap > 2 * dep.params.checkpoint_interval
        assert len(client.receipts) == 400  # no client-visible loss

    def test_catchup_survives_duplication_and_reordering(self):
        dep = build_deployment(params=SYNC_PARAMS)
        dep.net.set_reorder(0.002, seed=11)
        dep.net.add_duplicate_rule(probability=0.25, seed=13)
        client = dep.add_client(retry_timeout=0.5)
        dep.start()
        sustained_load(dep, client)
        dep.partition_replicas([3], start=0.2, duration=3.0)
        dep.run(until=9.0)
        assert dep.net.messages_duplicated > 0
        assert dep.net.messages_reordered > 0
        assert_caught_up(dep, dep.replicas[3])

    def test_sync_disabled_falls_back_to_legacy_fetch(self):
        dep = build_deployment(params=SYNC_PARAMS.variant(state_sync=False))
        client = dep.add_client(retry_timeout=0.5)
        dep.start()
        sustained_load(dep, client)
        dep.partition_replicas([3], start=0.2, duration=3.0)
        dep.run(until=8.0)
        victim = dep.replicas[3]
        counters = victim.metrics.summary()["counters"]
        assert counters.get("sync_sessions_completed", 0) == 0
        assert victim.committed_upto == max(r.committed_upto for r in dep.replicas)
        assert dep.ledgers_agree()


class TestAddReplicaMidRun:
    def test_added_replica_syncs_and_mirrors(self):
        dep = build_deployment(params=SYNC_PARAMS)
        client = dep.add_client(retry_timeout=0.5)
        dep.start()
        sustained_load(dep, client)
        added = []
        dep.net.scheduler.at(2.0, lambda: added.append(dep.add_replica()))
        dep.run(until=6.0)
        newcomer = added[0]
        assert newcomer.id == 4
        result = assert_caught_up(dep, newcomer)
        # It joined well after two checkpoint intervals of history existed.
        assert result["cp_seqno"] >= dep.params.checkpoint_interval
        # And now mirrors passively: its frontier advanced past sync tip.
        assert newcomer.committed_upto > result["tip_seqno"]
        assert not newcomer.is_member()

    def test_added_replica_can_become_member(self):
        dep = build_deployment(params=SYNC_PARAMS)
        client = dep.add_client(retry_timeout=0.5)
        members = {m: dep.member_client(m) for m in ("member-1", "member-2", "member-3")}
        dep.start()
        sustained_load(dep, client, waves=10)
        added = []
        dep.net.scheduler.at(0.6, lambda: added.append(dep.add_replica()))
        dep.run(until=1.5)
        assert added[0].committed_upto > 0  # synced before the referendum
        new_config = dep.propose_successor(add=[4], remove=[0])
        members["member-1"].submit(
            "gov.propose", {"member": "member-1", "config": new_config.to_wire()}, min_index=0
        )
        dep.run(until=2.0)
        for name in ("member-1", "member-2", "member-3"):
            members[name].submit("gov.vote", {"member": name, "accept": True}, min_index=0)
            dep.run(until=dep.net.scheduler.now + 0.2)
        dep.run(until=6.0)
        assert all(r.schedule.current().number == 1 for r in dep.replicas)
        assert added[0].is_member()
        assert dep.ledgers_agree()


class TestCrashRecovery:
    def test_crash_then_recover_catches_up(self):
        dep = build_deployment(params=SYNC_PARAMS)
        client = dep.add_client(retry_timeout=0.5)
        dep.start()
        sustained_load(dep, client)
        dep.net.scheduler.at(0.5, lambda: dep.crash_replica(2))
        dep.net.scheduler.at(3.5, lambda: dep.recover_replica(2))
        dep.run(until=8.0)
        victim = dep.replicas[2]
        counters = victim.metrics.summary()["counters"]
        assert counters.get("volatile_resets", 0) == 1
        assert counters.get("sync_started_recovery", 0) == 1
        assert_caught_up(dep, victim)

    def test_crashed_replica_stays_dark_to_later_joiners(self):
        # A node registered after the crash must not tunnel through the
        # crash partition and sync from the (stale) crashed replica.
        dep = build_deployment(params=SYNC_PARAMS)
        client = dep.add_client(retry_timeout=0.5)
        dep.start()
        sustained_load(dep, client)
        dep.net.scheduler.at(0.5, lambda: dep.crash_replica(2))
        added = []
        dep.net.scheduler.at(2.0, lambda: added.append(dep.add_replica()))
        dep.run(until=4.0)
        newcomer = added[0]
        result = newcomer.sync_client.last_result
        assert result is not None and result["server"] != "replica-2"
        assert newcomer.committed_upto > dep.replicas[2].committed_upto
        dep.recover_replica(2)
        dep.run(until=8.0)
        assert dep.replicas[2].committed_upto == max(r.committed_upto for r in dep.replicas)

    def test_crash_is_silent(self):
        dep = build_deployment(params=SYNC_PARAMS)
        client = dep.add_client(retry_timeout=0.5)
        dep.start()
        sustained_load(dep, client, waves=10)
        dep.net.scheduler.at(0.3, lambda: dep.crash_replica(2))
        marks = []
        dep.net.scheduler.at(0.4, lambda: marks.append(dep.replicas[2].committed_upto))
        dep.run(until=2.0)
        # Frozen while crashed; the rest keeps committing.
        assert dep.replicas[2].committed_upto == marks[0]
        assert max(r.committed_upto for r in dep.replicas) > marks[0]


class TestSuffixSignatureVerification:
    def test_forged_pre_prepare_signature_rejected(self):
        from dataclasses import replace

        from repro.errors import ProtocolError

        dep = build_deployment(params=SYNC_PARAMS)
        client = dep.add_client(retry_timeout=0.5)
        dep.start()
        sustained_load(dep, client, waves=10)
        dep.run(until=2.0)
        ledger = dep.replicas[1].ledger
        suffix = [
            (info.seqno, ledger.batch_pre_prepare(info.seqno)) for info in ledger.batches()
        ]
        assert len(suffix) > 2
        checker = dep.replicas[3].sync_client
        checker._verify_suffix_signatures(ledger, suffix)  # honest: passes
        seqno, pp = suffix[-1]
        forged = suffix[:-1] + [(seqno, replace(pp, signature=bytes(64)))]
        with pytest.raises(ProtocolError):
            checker._verify_suffix_signatures(ledger, forged)


class TestByzantineServer:
    def test_tampered_chunks_rejected_and_failover(self):
        # Replica 0 serves corrupted chunks; the victim (3) must reject
        # them against the manifest digests and catch up from an honest
        # peer instead.
        dep = build_deployment(params=SYNC_PARAMS, behaviors={0: TamperSyncChunks()})
        client = dep.add_client(retry_timeout=0.5)
        dep.start()
        sustained_load(dep, client)
        dep.partition_replicas([3], start=0.2, duration=3.0)
        dep.run(until=9.0)
        victim = dep.replicas[3]
        counters = victim.metrics.summary()["counters"]
        assert counters.get("sync_chunks_rejected", 0) >= 1
        assert counters.get("sync_failovers", 0) >= 1
        result = assert_caught_up(dep, victim)
        assert result["server"] != "replica-0"

    def test_all_state_installed_is_verified(self):
        # Even with the tampering server first in line, the installed
        # state digest matches the honest replicas bit for bit (checked
        # inside assert_caught_up above); here we additionally pin that
        # the tamperer really did send corrupted bytes.
        behavior = TamperSyncChunks()
        dep = build_deployment(params=SYNC_PARAMS, behaviors={0: behavior})
        client = dep.add_client(retry_timeout=0.5)
        dep.start()
        sustained_load(dep, client)
        dep.partition_replicas([3], start=0.2, duration=3.0)
        dep.run(until=9.0)
        assert behavior.tampered >= 1
        assert len({r.kv.state_digest() for r in dep.replicas}) == 1


class TestChunkTransferResumption:
    """A server failover mid-transfer keeps the already-verified chunks
    when the replacement offers the same checkpoint."""

    def _run_with_dying_server(self, drop_after: int):
        # Small chunks so the checkpoint splits into many; the first
        # server (replica-0, first offer adopted) goes silent after
        # ``drop_after`` chunk responses.
        params = SYNC_PARAMS.variant(sync_chunk_bytes=256, sync_window=2)
        dep = build_deployment(params=params)
        client = dep.add_client(retry_timeout=0.5)
        dep.start()
        # Load ends before the heal so the stable checkpoint is frozen
        # during the transfer (offers from all servers stay comparable);
        # with no traffic flowing after the heal, lag detection has no
        # stashed pre-prepares to fire on, so the transfer is started
        # explicitly — the operator-recovery entry point.
        sustained_load(dep, client, waves=25)
        dep.partition_replicas([3], start=0.2, duration=3.0)
        dep.net.scheduler.at(3.2, lambda: dep.replicas[3].start_state_sync("manual"))
        served = {"n": 0}

        def die_mid_transfer(src, dst, msg):
            if (
                src == "replica-0"
                and dst == "replica-3"
                and isinstance(msg, tuple)
                and msg
                and msg[0] == "sync-chunk"
            ):
                served["n"] += 1
                return served["n"] > drop_after
            return False

        dep.net.add_drop_rule(die_mid_transfer)
        dep.run(until=12.0)
        return dep, dep.replicas[3], served["n"]

    def test_failover_resumes_with_verified_chunks(self):
        dep, victim, served = self._run_with_dying_server(drop_after=3)
        counters = victim.metrics.summary()["counters"]
        assert counters.get("sync_failovers", 0) >= 1
        assert counters.get("sync_transfers_resumed", 0) >= 1
        result = assert_caught_up(dep, victim)
        assert result["server"] != "replica-0"
        total = result["chunks"]
        assert total > 3  # the transfer really was chunked
        # Resumption economics: the 3 verified chunks from the dead
        # server were kept, so the session never re-fetched them.
        assert counters.get("sync_chunks_received", 0) <= total + 2

    def test_resumed_transfer_installs_verified_state(self):
        dep, victim, _ = self._run_with_dying_server(drop_after=2)
        assert len({r.kv.state_digest() for r in dep.replicas}) == 1
        assert dep.ledgers_agree()


class TestRecoverDuringViewChange:
    """Crash the primary while another replica is already down, so the
    survivors start a view change that cannot reach quorum; then recover
    the primary with a resync mid-view-change.  The recovering replica's
    sync sees a server whose *tip* equals its own but whose *view* is
    newer — it must adopt the new view rather than resume in the old one
    (with n=4 and one replica still dark, resuming stale stalls the
    service forever).  This schedule was mined by the chaos fuzzer and
    cornered three more bugs on the way to quiescence: stuck proposed-
    but-never-prepared batches escaping the view-change timer's pending
    predicate, a resumed primary never re-proposing admitted requests,
    and a replica whose batch committed via ledger install never sending
    its reply (fatal when it is the committing view's primary, whose
    reply every receipt requires)."""

    def test_recovered_primary_adopts_new_view_and_receipts_complete(self):
        from helpers import FAST_PARAMS

        params = FAST_PARAMS.variant(view_change_timeout=1.0)
        dep = build_deployment(params=params, seed=b"recover-vc")
        client = dep.add_client(retry_timeout=0.5)
        dep.start()
        wl = SmallBankWorkload(n_accounts=200, seed=9)
        for _ in range(20):
            client.submit(*wl.next_transaction(), min_index=0)
        dep.run(until=0.5)
        assert all(r.committed_upto >= 1 for r in dep.replicas)

        # Crash a backup, then the primary: only 2 of 4 stay up, so the
        # view change the survivors start can never gather its quorum.
        dep.crash_replica(3)
        dep.crash_replica(0)
        for _ in range(5):
            client.submit(*wl.next_transaction(), min_index=0)
        dep.run(until=dep.net.scheduler.now + 3.0)

        dep.recover_replica(0, resync=True)
        dep.run(until=dep.net.scheduler.now + 60.0)

        live = [dep.replicas[i] for i in (0, 1, 2)]
        assert len({r.view for r in live}) == 1, "live replicas never converged on a view"
        assert live[0].view > 0, "recovered replica resumed in the stale view"
        assert not live[0].syncing and live[0].ready
        frontier = max(r.committed_upto for r in dep.replicas)
        assert all(r.committed_upto == frontier for r in live)
        # Every submitted transaction ends with a full receipt — the
        # install-committed primary re-sends its reply on retransmission.
        assert len(client.receipts) == 25
