"""Overload pipeline: coordinated admission, deadline shedding, client
backpressure, and the knee finder.

The deployment-level tests run against a cost model scaled ~100x slower
than the dedicated cluster so the saturation knee sits at a few hundred
tx/s and a full past-the-knee sweep stays cheap.  Everything is seeded:
two runs of any scenario here are bit-identical.
"""

from __future__ import annotations

import pytest

from repro.bench.runners import BenchPoint, find_knee, run_iaccf_point
from repro.lpbft import ProtocolParams
from repro.sim.costs import CostModel
from repro.workloads.loadgen import ExponentialBackoff

# A machine ~100x slower than the dedicated cluster: the knee lands near
# ~150 tx/s, so overload scenarios need only a few hundred requests.
SLOW = CostModel(
    cores=4,
    sign=5e-3,
    verify=20e-3,
    mac=50e-6,
    hash_fixed=40e-6,
    kv_op_base=55e-6,
    kv_op_log_factor=1.5e-6,
    exec_overhead=1e-3,
    ledger_append=30e-6,
    message_overhead=100e-6,
    checkpoint_per_entry=5e-6,
)

BASE = dict(
    pipeline=2, max_batch=100, checkpoint_interval=10_000,
    batch_delay=0.0005, view_change_timeout=30.0,
)


def overload_point(rate, params, duration=1.5, warmup=0.4, **kwargs):
    return run_iaccf_point(
        rate=rate, params=params, costs=SLOW, accounts=500, duration=duration,
        warmup=warmup, client_kwargs=dict(retry_budget=3, backoff_seed=1),
        **kwargs,
    )


class TestBackoff:
    def test_same_seed_same_delays(self):
        a = ExponentialBackoff(base=0.1, seed=42)
        b = ExponentialBackoff(base=0.1, seed=42)
        assert [a.delay(i) for i in range(8)] == [b.delay(i) for i in range(8)]

    def test_different_seeds_differ(self):
        a = ExponentialBackoff(base=0.1, seed=1)
        b = ExponentialBackoff(base=0.1, seed=2)
        assert [a.delay(i) for i in range(8)] != [b.delay(i) for i in range(8)]

    def test_shape(self):
        policy = ExponentialBackoff(base=0.1, factor=2.0, cap=1.0, jitter=0.5, seed=0)
        delays = [policy.delay(i) for i in range(10)]
        # Every delay sits within [raw, raw * 1.5] of its uncapped base.
        for attempt, delay in enumerate(delays):
            raw = min(0.1 * 2.0 ** attempt, 1.0)
            assert raw <= delay <= raw * 1.5
        assert max(delays) <= 1.5  # cap * (1 + jitter)

    def test_bad_shapes_rejected(self):
        with pytest.raises(ValueError):
            ExponentialBackoff(base=0.0)
        with pytest.raises(ValueError):
            ExponentialBackoff(base=0.1, cap=0.01)
        with pytest.raises(ValueError):
            ExponentialBackoff(jitter=2.0)


class TestFindKnee:
    @staticmethod
    def synthetic_runner(capacity):
        """A fake run_point whose goodput saturates at ``capacity``."""

        def run_point(rate, **kwargs):
            goodput = min(rate, capacity)
            return BenchPoint(
                system="synthetic", offered_tps=rate, throughput_tps=goodput,
                latency_mean_ms=1.0, latency_p50_ms=1.0, latency_p99_ms=2.0,
                extra={"offered_tps": rate, "goodput_tps": goodput},
            )

        return run_point

    def test_bisection_converges(self):
        # Sustainable iff goodput >= 0.9 * offered iff rate <= capacity/0.9.
        result = find_knee(self.synthetic_runner(1000.0), lo=200, hi=4000, rel_tol=0.02)
        assert result.sustainable
        assert 1000.0 <= result.knee_tps <= 1000.0 / 0.9 * 1.03
        assert result.goodput_tps == 1000.0
        assert result.point() is not None

    def test_unsustainable_bracket(self):
        result = find_knee(self.synthetic_runner(100.0), lo=500, hi=1000)
        assert not result.sustainable
        assert result.knee_tps == 500
        assert len(result.probes) == 1

    def test_sustainable_hi_returns_hi(self):
        result = find_knee(self.synthetic_runner(10_000.0), lo=100, hi=500)
        assert result.sustainable
        assert result.knee_tps == 500
        assert len(result.probes) == 2

    def test_bad_bracket(self):
        with pytest.raises(ValueError):
            find_knee(self.synthetic_runner(100.0), lo=500, hi=400)


class TestCoordinatedAdmission:
    def test_only_primary_sheds_and_backups_follow(self):
        """2x past the knee: the primary is the single admission point —
        backups shed nothing, the client hears rejections, and the
        replicas still agree on a non-trivial committed prefix."""
        params = ProtocolParams(**BASE, request_queue_cap=50_000)
        point = overload_point(400, params, label="coordinated")
        extra = point.extra
        assert extra["requests_shed"] > 0
        assert extra["requests_rejected"] > 0
        # All shedding happened at the primary (counter summed over all
        # replicas equals the primary's own).
        assert extra["requests_shed"] == extra["counters"]["requests_shed"]
        # Shed-before-verify: no verification was wasted on shed requests
        # at the primary, and backups deferred verification for the deep
        # stash instead of paying for never-sequenced requests.
        assert extra["counters"].get("requests_wasted_verify", 0) == 0
        assert extra["goodput_tps"] > 0
        assert extra["admitted_tps"] < extra["offered_tps"]

    def test_uncoordinated_wastes_verification(self):
        """The PR 3 regime: every replica sheds an uncoordinated subset,
        so backups burn verify cycles on requests that are never
        sequenced — visible as wasted_verify_s."""
        params = ProtocolParams(
            **BASE, coordinated_admission=False, deadline_shedding=False,
            request_queue_cap=150,
        )
        point = overload_point(400, params, label="uncoordinated")
        assert point.extra["requests_shed"] > 0
        assert point.extra["wasted_verify_s"] > 0

    def test_retry_budget_abandons(self):
        """A budgeted client retries rejected requests under backoff and
        gives up once the budget is spent."""
        params = ProtocolParams(
            **BASE, request_queue_cap=50_000, client_timeout=0.4,
            admission_backlog=0.2,
        )
        point = run_iaccf_point(
            rate=500, params=params, costs=SLOW, accounts=500, duration=2.5,
            warmup=0.4, label="budgeted",
            client_kwargs=dict(
                retry_budget=2, backoff_seed=1, retry_timeout=0.2,
                backoff=ExponentialBackoff(base=0.1, cap=0.4, seed=1),
            ),
        )
        extra = point.extra
        assert extra["requests_rejected"] > 0
        assert extra["request_retries"] > 0
        assert extra["requests_abandoned"] > 0


class TestDeadlineShedding:
    def test_expired_queue_tail_dropped(self):
        """With a client timeout shorter than the projected queue drain,
        the primary drops the tail of its queue before executing it."""
        params = ProtocolParams(
            **BASE, request_queue_cap=50_000, client_timeout=0.15,
            admission_backlog=10.0,  # admission never sheds: deadline does
            lane_backlog_budget=10.0,
        )
        point = overload_point(500, params, label="deadline")
        extra = point.extra
        assert extra["requests_deadline_dropped"] > 0
        assert extra["requests_rejected"] > 0  # deadline rejects reach the client
        # Dropped requests never reached the execute lane: everything the
        # primary executed was committed or still in flight, and queue
        # delay stayed bounded near the timeout.
        assert extra["queue_delay_p90_ms"] < 4 * 150

    def test_disabled_by_default_flag(self):
        params = ProtocolParams(
            **BASE, deadline_shedding=False, request_queue_cap=50_000,
            client_timeout=0.15, admission_backlog=10.0, lane_backlog_budget=10.0,
        )
        point = overload_point(500, params, label="no-deadline")
        assert point.extra["requests_deadline_dropped"] == 0


class TestGoodputPlateau:
    def test_goodput_2x_past_knee(self):
        """The acceptance property, scaled down: find the knee, then
        offer twice as much — goodput must hold >= 90% of knee goodput
        instead of collapsing."""
        params = ProtocolParams(**BASE, request_queue_cap=50_000, client_timeout=4.0)
        knee = find_knee(
            overload_point, lo=60, hi=600, rel_tol=0.15, max_probes=6,
            params=params, label="knee-probe",
        )
        assert knee.sustainable
        past = overload_point(2.0 * knee.knee_tps, params, label="2x-knee")
        assert past.extra["goodput_tps"] >= 0.9 * knee.goodput_tps
