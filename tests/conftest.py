"""Shared fixtures: a small, fast SmallBank deployment factory.

The plain helpers live in :mod:`helpers` (``tests/helpers.py``); this
conftest only defines fixtures on top of them, so nothing here needs to be
imported by test modules directly.
"""

from __future__ import annotations

import pytest

from helpers import FAST_PARAMS, build_deployment, run_waves, run_workload

__all__ = ["FAST_PARAMS", "build_deployment", "run_waves", "run_workload"]


@pytest.fixture
def checkpointed_deployment():
    """A deployment guaranteed to cross several checkpoint intervals."""
    dep = build_deployment(params=FAST_PARAMS.variant(checkpoint_interval=4))
    client = dep.add_client(retry_timeout=0.5)
    dep.start()
    digests = run_waves(dep, client, waves=5, per_wave=20)
    return dep, client, digests


@pytest.fixture
def small_deployment():
    dep = build_deployment()
    client = dep.add_client(retry_timeout=0.5)
    dep.start()
    return dep, client


@pytest.fixture
def committed_deployment(small_deployment):
    """A deployment with 40 committed transactions and their receipts."""
    dep, client = small_deployment
    digests = run_workload(dep, client, n_tx=90, until=6.0)
    return dep, client, digests
