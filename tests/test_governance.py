"""Configurations, governance procedures, schedules, and the sub-ledger."""

import pytest

from repro.errors import GovernanceError
from repro.governance import (
    Configuration,
    MemberInfo,
    ReplicaInfo,
    register_governance_procedures,
)
from repro.governance.schedule import ConfigSchedule, ConfigSpan
from repro.governance.transactions import (
    accepted_configuration,
    current_configuration,
    install_configuration,
)
from repro.kvstore import KVStore, ProcedureRegistry
from repro.lpbft import make_genesis_config


def config_of(n, number=0, threshold=None):
    config, _, _ = make_genesis_config(n)
    if number == 0:
        return config
    return Configuration(
        number=number, members=config.members, replicas=config.replicas,
        vote_threshold=config.vote_threshold,
    )


class TestConfiguration:
    def test_quorum_arithmetic(self):
        for n, f in [(4, 1), (7, 2), (10, 3), (13, 4), (64, 21)]:
            config = config_of(n)
            assert config.f == f
            assert config.quorum == n - f

    def test_duplicate_replica_rejected(self):
        config = config_of(4)
        with pytest.raises(GovernanceError):
            Configuration(
                number=0, members=config.members,
                replicas=config.replicas + (config.replicas[0],),
                vote_threshold=1,
            )

    def test_unknown_operator_rejected(self):
        config = config_of(4)
        bad = ReplicaInfo(replica_id=99, public_key=b"\x02" * 33, operator="nobody")
        with pytest.raises(GovernanceError):
            Configuration(number=0, members=config.members,
                          replicas=config.replicas + (bad,), vote_threshold=1)

    def test_threshold_range(self):
        config = config_of(4)
        with pytest.raises(GovernanceError):
            Configuration(number=0, members=config.members, replicas=config.replicas,
                          vote_threshold=0)

    def test_primary_rotation(self):
        config = config_of(4)
        assert [config.primary_for_view(v) for v in range(5)] == [0, 1, 2, 3, 0]

    def test_lookups(self):
        config = config_of(4)
        assert config.replica(2).replica_id == 2
        assert config.operator_of(1) == "member-1"
        assert config.has_member("member-0")
        assert not config.has_member("stranger")
        with pytest.raises(GovernanceError):
            config.replica(99)

    def test_wire_roundtrip(self):
        config = config_of(4)
        assert Configuration.from_wire(config.to_wire()) == config

    def test_successor_number_must_increment(self):
        config = config_of(4)
        with pytest.raises(GovernanceError):
            config.validate_successor(config_of(4, number=0))

    def test_successor_change_bound(self):
        config = config_of(7)  # f = 2
        # Removing 3 replicas exceeds f.
        fewer = Configuration(
            number=1, members=config.members, replicas=config.replicas[:4],
            vote_threshold=config.vote_threshold,
        )
        with pytest.raises(GovernanceError):
            config.validate_successor(fewer)

    def test_successor_swap_allowed(self):
        config = config_of(4)
        other, _, _ = make_genesis_config(5, seed=b"other")
        swapped = Configuration(
            number=1,
            members=config.members + (MemberInfo("member-4", other.members[4].public_key),),
            replicas=config.replicas[1:] + (
                ReplicaInfo(replica_id=4, public_key=other.replicas[4].public_key, operator="member-4"),
            ),
            vote_threshold=config.vote_threshold,
        )
        config.validate_successor(swapped)  # one out, one in: allowed at f=1


class TestGovernanceProcedures:
    def setup_method(self):
        self.registry = ProcedureRegistry()
        register_governance_procedures(self.registry)
        self.config = config_of(4)
        self.kv = KVStore()
        self.kv.execute(lambda tx: install_configuration(tx, self.config))
        self.next_config = Configuration(
            number=1, members=self.config.members, replicas=self.config.replicas,
            vote_threshold=self.config.vote_threshold,
        )

    def invoke(self, name, args):
        result, _ = self.kv.execute(lambda tx: self.registry.invoke(name, tx, args))
        return result

    def test_propose_and_pass(self):
        result = self.invoke("gov.propose", {"member": "member-0", "config": self.next_config.to_wire()})
        assert result["ok"]
        for member in ("member-0", "member-1"):
            result = self.invoke("gov.vote", {"member": member, "accept": True})
            assert result["ok"] and not result["passed"]
        result = self.invoke("gov.vote", {"member": "member-2", "accept": True})
        assert result["passed"]
        accepted = [None]
        self.kv.execute(lambda tx: accepted.__setitem__(0, accepted_configuration(tx)))
        assert accepted[0] is not None and accepted[0].number == 1

    def test_non_member_cannot_propose(self):
        result = self.invoke("gov.propose", {"member": "stranger", "config": self.next_config.to_wire()})
        assert not result["ok"]

    def test_double_propose_rejected(self):
        self.invoke("gov.propose", {"member": "member-0", "config": self.next_config.to_wire()})
        result = self.invoke("gov.propose", {"member": "member-1", "config": self.next_config.to_wire()})
        assert not result["ok"]

    def test_double_vote_rejected(self):
        self.invoke("gov.propose", {"member": "member-0", "config": self.next_config.to_wire()})
        self.invoke("gov.vote", {"member": "member-1", "accept": True})
        result = self.invoke("gov.vote", {"member": "member-1", "accept": True})
        assert not result["ok"]

    def test_vote_without_proposal_rejected(self):
        result = self.invoke("gov.vote", {"member": "member-0", "accept": True})
        assert not result["ok"]

    def test_rejection_withdraws_proposal(self):
        self.invoke("gov.propose", {"member": "member-0", "config": self.next_config.to_wire()})
        result = self.invoke("gov.vote", {"member": "member-1", "accept": False})
        assert result["ok"] and not result["passed"]
        result = self.invoke("gov.vote", {"member": "member-2", "accept": True})
        assert not result["ok"]  # no pending proposal anymore

    def test_current_configuration_read(self):
        out = [None]
        self.kv.execute(lambda tx: out.__setitem__(0, current_configuration(tx)))
        assert out[0] == self.config


class TestSchedule:
    def test_genesis_and_lookup(self):
        config = config_of(4)
        schedule = ConfigSchedule.genesis(config)
        assert schedule.config_at_seqno(1) is config
        assert schedule.config_at_seqno(999) is config
        assert schedule.current() is config

    def test_append_and_spans(self):
        config = config_of(4)
        schedule = ConfigSchedule.genesis(config)
        next_config = Configuration(number=1, members=config.members,
                                    replicas=config.replicas, vote_threshold=2)
        schedule.append(ConfigSpan(config=next_config, start_seqno=20, start_index=100))
        assert schedule.config_at_seqno(19).number == 0
        assert schedule.config_at_seqno(20).number == 1
        assert schedule.config_at_index(99).number == 0
        assert schedule.config_at_index(100).number == 1
        assert schedule.config_number(1) is next_config

    def test_append_requires_increasing(self):
        config = config_of(4)
        schedule = ConfigSchedule.genesis(config)
        with pytest.raises(GovernanceError):
            schedule.append(ConfigSpan(config=config, start_seqno=5, start_index=5))

    def test_genesis_must_be_zero(self):
        config = config_of(4)
        c1 = Configuration(number=1, members=config.members, replicas=config.replicas,
                           vote_threshold=2)
        with pytest.raises(GovernanceError):
            ConfigSchedule.genesis(c1)

    def test_wire_roundtrip(self):
        config = config_of(4)
        schedule = ConfigSchedule.genesis(config)
        again = ConfigSchedule.from_wire(schedule.to_wire())
        assert again.current() == config
