"""Transactional KV store: semantics, rollback, digests, procedures."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import KVError, TransactionAborted
from repro.kvstore import Checkpoint, KVStore, ProcedureRegistry, checkpoint_digest
from repro.kvstore.store import state_accumulator


class TestTransactions:
    def test_commit_applies_writes(self):
        kv = KVStore()
        result, record = kv.execute(lambda tx: tx.put("a", 1))
        assert kv.get("a") == 1
        assert record is not None

    def test_read_your_writes(self):
        kv = KVStore({"a": 1})

        def fn(tx):
            tx.put("a", 2)
            return tx.get("a")

        result, _ = kv.execute(fn)
        assert result == 2

    def test_abort_rolls_back(self):
        kv = KVStore({"a": 1})

        def fn(tx):
            tx.put("a", 99)
            tx.abort("nope")

        result, record = kv.execute(fn)
        assert record is None
        assert result == {"ok": False, "error": "nope"}
        assert kv.get("a") == 1

    def test_exception_rolls_back_and_propagates(self):
        kv = KVStore({"a": 1})
        with pytest.raises(ZeroDivisionError):
            kv.execute(lambda tx: (tx.put("a", 2), 1 / 0))
        assert kv.get("a") == 1

    def test_delete(self):
        kv = KVStore({"a": 1})
        kv.execute(lambda tx: tx.delete("a"))
        assert "a" not in kv

    def test_has_and_get_default(self):
        kv = KVStore({"a": 1})

        def fn(tx):
            assert tx.has("a")
            assert not tx.has("b")
            assert tx.get("b", "dflt") == "dflt"
            tx.delete("a")
            assert not tx.has("a")

        kv.execute(fn)

    def test_keys_with_prefix_sees_buffered_writes(self):
        kv = KVStore({"p:1": 1, "p:2": 2, "q:1": 3})

        def fn(tx):
            tx.put("p:3", 3)
            tx.delete("p:1")
            return tx.keys_with_prefix("p:")

        result, _ = kv.execute(fn)
        assert result == ["p:2", "p:3"]

    def test_handle_unusable_after_commit(self):
        kv = KVStore()
        tx = kv.begin()
        tx.put("a", 1)
        tx._commit()
        with pytest.raises(KVError):
            tx.get("a")

    def test_op_count(self):
        kv = KVStore({"a": 1})
        tx = kv.begin()
        tx.get("a")
        tx.put("b", 2)
        assert tx.op_count == 2
        tx._discard()

    def test_non_string_key_rejected(self):
        kv = KVStore()
        tx = kv.begin()
        with pytest.raises(KVError):
            tx.put(5, "x")

    def test_unencodable_value_rejected_eagerly(self):
        from repro.errors import CodecError

        kv = KVStore()
        tx = kv.begin()
        with pytest.raises(CodecError):
            tx.put("a", object())


class TestRollback:
    def test_rollback_last(self):
        kv = KVStore()
        kv.execute(lambda tx: tx.put("a", 1))
        kv.execute(lambda tx: tx.put("a", 2))
        kv.rollback_last()
        assert kv.get("a") == 1

    def test_rollback_to_restores_deletes(self):
        kv = KVStore({"a": 1})
        kv.execute(lambda tx: tx.delete("a"))
        kv.rollback_to(0)
        assert kv.get("a") == 1

    def test_rollback_suffix(self):
        kv = KVStore()
        for i in range(5):
            kv.execute(lambda tx, i=i: tx.put(f"k{i}", i))
        kv.rollback_to(2)
        assert kv.get("k1") == 1
        assert kv.get("k2") is None
        assert kv.tx_count == 2

    def test_rollback_out_of_range(self):
        kv = KVStore()
        with pytest.raises(KVError):
            kv.rollback_to(1)

    def test_rollback_restores_state_digest(self):
        kv = KVStore({"a": 1, "b": 2})
        before = kv.state_digest()
        kv.execute(lambda tx: (tx.put("a", 9), tx.delete("b"), tx.put("c", 3)))
        kv.rollback_last()
        assert kv.state_digest() == before


class TestDigests:
    def test_digest_independent_of_history(self):
        kv1 = KVStore()
        kv1.execute(lambda tx: tx.put("a", 1))
        kv1.execute(lambda tx: tx.put("b", 2))
        kv2 = KVStore({"b": 2, "a": 1})
        assert kv1.state_digest() == kv2.state_digest()

    def test_checkpoint_digest_matches_store(self):
        kv = KVStore({"x": 1, "y": (1, 2)})
        assert checkpoint_digest(kv.snapshot()) == kv.state_digest()

    def test_digest_changes_with_state(self):
        kv = KVStore({"a": 1})
        before = kv.state_digest()
        kv.execute(lambda tx: tx.put("a", 2))
        assert kv.state_digest() != before

    def test_acc_hint_matches_computed(self):
        state = {"a": 1, "b": 2}
        acc = state_accumulator(state.items())
        assert KVStore(state, acc_hint=acc).state_digest() == KVStore(state).state_digest()

    def test_restore_recomputes_digest(self):
        kv = KVStore({"a": 1})
        snap = kv.snapshot()
        kv.execute(lambda tx: tx.put("b", 2))
        kv.restore(snap)
        assert kv.state_digest() == KVStore({"a": 1}).state_digest()


class TestCheckpoint:
    def test_capture_and_restore(self):
        kv = KVStore({"a": 1})
        cp = Checkpoint.capture(kv, seqno=5, ledger_size=10, ledger_root=b"\x01" * 32)
        kv.execute(lambda tx: tx.put("a", 2))
        cp.restore_into(kv)
        assert kv.get("a") == 1
        assert cp.digest() == kv.state_digest()

    def test_capture_digest_cached(self):
        kv = KVStore({"a": 1})
        cp = Checkpoint.capture(kv, 0, 0, b"\x00" * 32)
        assert cp.digest() == checkpoint_digest(cp.state)

    def test_negative_seqno_rejected(self):
        with pytest.raises(KVError):
            Checkpoint.capture(KVStore(), -1, 0, b"\x00" * 32)


class TestProcedures:
    def test_register_and_invoke(self):
        reg = ProcedureRegistry()
        reg.register("inc", lambda tx, args: tx.put("n", (tx.get("n") or 0) + args["by"]))
        kv = KVStore()
        kv.execute(lambda tx: reg.invoke("inc", tx, {"by": 5}))
        assert kv.get("n") == 5

    def test_unknown_procedure(self):
        reg = ProcedureRegistry()
        with pytest.raises(KVError):
            reg.get("missing")

    def test_code_digest_changes_on_update(self):
        reg = ProcedureRegistry()
        reg.register("p", lambda tx, args: None)
        before = reg.code_digest()
        reg.register("p", lambda tx, args: 1)
        assert reg.code_digest() != before

    def test_names_sorted(self):
        reg = ProcedureRegistry()
        reg.register("b", lambda tx, a: None)
        reg.register("a", lambda tx, a: None)
        assert reg.names() == ["a", "b"]

    def test_copy_independent(self):
        reg = ProcedureRegistry()
        reg.register("p", lambda tx, a: None)
        clone = reg.copy()
        clone.register("q", lambda tx, a: None)
        assert not reg.has("q") and clone.has("p")

    def test_empty_name_rejected(self):
        reg = ProcedureRegistry()
        with pytest.raises(KVError):
            reg.register("", lambda tx, a: None)


# -- property-based -----------------------------------------------------------

ops = st.lists(
    st.tuples(
        st.sampled_from(["put", "delete"]),
        st.sampled_from(["a", "b", "c", "d"]),
        st.integers(min_value=0, max_value=9),
    ),
    min_size=1,
    max_size=12,
)


@settings(max_examples=50, deadline=None)
@given(ops, ops)
def test_property_rollback_is_inverse(first, second):
    kv = KVStore({"a": 0})

    def apply(batch):
        def fn(tx):
            for op, key, value in batch:
                if op == "put":
                    tx.put(key, value)
                else:
                    tx.delete(key)

        kv.execute(fn)

    apply(first)
    snapshot = kv.snapshot()
    digest_before = kv.state_digest()
    apply(second)
    kv.rollback_last()
    assert kv.snapshot() == snapshot
    assert kv.state_digest() == digest_before


@settings(max_examples=50, deadline=None)
@given(st.dictionaries(st.text(min_size=1, max_size=4), st.integers(), max_size=8))
def test_property_digest_is_content_function(state):
    assert KVStore(dict(state)).state_digest() == KVStore(dict(reversed(list(state.items())))).state_digest()
