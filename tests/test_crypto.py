"""Hashing, signature backends, and the nonce commitment scheme."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto import (
    DIGEST_SIZE,
    PUBLIC_KEY_SIZE,
    SIGNATURE_SIZE,
    HashSigBackend,
    commit_nonce,
    digest,
    digest_pair,
    digest_value,
    generate_keypair,
    new_nonce,
    open_matches,
    sign,
    verify,
)
from repro.errors import CryptoError


class TestHashing:
    def test_digest_size(self):
        assert len(digest(b"abc")) == DIGEST_SIZE

    def test_digest_pair_is_concatenation_hash(self):
        left, right = digest(b"l"), digest(b"r")
        assert digest_pair(left, right) == digest(left + right)

    def test_digest_value_follows_codec(self):
        from repro import codec

        value = {"a": 1}
        assert digest_value(value) == digest(codec.encode(value))

    def test_different_values_different_digests(self):
        assert digest_value((1, 2)) != digest_value((2, 1))


class TestHashSigBackend:
    def test_deterministic_from_seed(self):
        backend = HashSigBackend()
        a = backend.generate(b"seed")
        b = backend.generate(b"seed")
        assert a.public_key == b.public_key

    def test_key_sizes_match_secp256k1_shape(self):
        kp = generate_keypair(b"k")
        assert len(kp.public_key) == PUBLIC_KEY_SIZE
        assert len(sign(kp, b"msg")) == SIGNATURE_SIZE

    def test_sign_verify_roundtrip(self):
        kp = generate_keypair(b"k1")
        signature = sign(kp, b"message")
        assert verify(kp.public_key, b"message", signature)

    def test_wrong_message_fails(self):
        kp = generate_keypair(b"k2")
        signature = sign(kp, b"message")
        assert not verify(kp.public_key, b"other", signature)

    def test_wrong_key_fails(self):
        kp1, kp2 = generate_keypair(b"a"), generate_keypair(b"b")
        signature = sign(kp1, b"m")
        assert not verify(kp2.public_key, b"m", signature)

    def test_tampered_signature_fails(self):
        kp = generate_keypair(b"k3")
        signature = bytearray(sign(kp, b"m"))
        signature[0] ^= 1
        assert not verify(kp.public_key, b"m", bytes(signature))

    def test_unknown_public_key_fails(self):
        kp = generate_keypair(b"k4")
        fake = b"\x02" + b"\x07" * 32
        assert not verify(fake, b"m", sign(kp, b"m"))

    def test_bad_key_length_raises(self):
        kp = generate_keypair(b"k5")
        with pytest.raises(CryptoError):
            verify(b"short", b"m", sign(kp, b"m"))

    def test_short_signature_is_invalid_not_error(self):
        kp = generate_keypair(b"k6")
        assert not verify(kp.public_key, b"m", b"short")

    def test_repr_hides_secret(self):
        kp = generate_keypair(b"k7")
        assert kp.secret.hex() not in repr(kp)


class TestNonceCommitment:
    def test_new_nonce_opens_its_commitment(self):
        nc = new_nonce(b"s")
        assert open_matches(nc.nonce, nc.commitment)

    def test_commit_nonce_matches(self):
        nc = new_nonce(b"s2")
        assert commit_nonce(nc.nonce) == nc.commitment

    def test_wrong_nonce_does_not_open(self):
        a, b = new_nonce(b"x"), new_nonce(b"y")
        assert not open_matches(a.nonce, b.commitment)

    def test_deterministic_from_seed(self):
        assert new_nonce(b"s").nonce == new_nonce(b"s").nonce

    def test_bad_nonce_length_raises(self):
        with pytest.raises(CryptoError):
            commit_nonce(b"short")

    def test_commitment_mismatch_rejected_at_construction(self):
        from repro.crypto.nonces import NonceCommitment

        nc = new_nonce(b"z")
        with pytest.raises(CryptoError):
            NonceCommitment(nonce=nc.nonce, commitment=b"\x00" * 32)

    @given(st.binary(min_size=32, max_size=32))
    def test_property_only_preimage_opens(self, fake):
        nc = new_nonce(b"prop")
        if fake != nc.nonce:
            assert not open_matches(fake, nc.commitment)


class TestEd25519Backend:
    def test_ed25519_if_available(self):
        pytest.importorskip("cryptography")
        from repro.crypto import Ed25519Backend

        backend = Ed25519Backend()
        kp = backend.generate(b"seed")
        signature = backend.sign(kp, b"msg")
        assert backend.verify(kp.public_key, b"msg", signature)
        assert not backend.verify(kp.public_key, b"other", signature)
